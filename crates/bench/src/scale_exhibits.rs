//! S1 and S2 — the scale exhibits.
//!
//! **S1**: a 2,000-node plain-DSR network (bootstrap route discovery +
//! traffic under mobility and node-failure churn) run under both
//! channel implementations. Impractical before the spatial-index
//! channel (the linear receiver scan makes every flood O(n²)); the
//! exhibit reports the wall-clock ratio and doubles as a coarse
//! channel-differential gate (the two runs must agree on every
//! machine-independent report field, or it panics).
//!
//! **S2**: the timer-wheel-era headline — 10,000 plain-DSR nodes
//! driven through formation, churn, and cross-field flows, plus a
//! secure variant (full CGA/DAD bootstrap storm; 1,000 hosts in full
//! mode, 250 in quick) run under **both queue implementations** as the
//! scale-level wheel-vs-heap differential gate, mirroring how S1 gates
//! grid-vs-linear.
//!
//! Both write into one machine-readable `BENCH_scale.json` (an `"s1"`
//! and an `"s2"` section, each exhibit preserving the other's last
//! same-mode record), so the perf trajectory is recorded run over run;
//! CI uploads it as an artifact and `tables -- --check-perf` compares
//! the engine events/sec numbers against the committed baseline in
//! `bench/baselines/`.

use crate::jsonscan::{extract_object, read_bool};
use crate::table::Table;
use manet_secure::scenario::{scale_family, Placement, RunReport, ScenarioBuilder, Workload};
use manet_secure::ProtocolConfig;
use manet_sim::{ChannelMode, ExecMode, QueueImpl, SimDuration, SimTime};
use std::time::Instant;

/// The S1 population size. The shape itself (uniform placement at
/// expected degree ~15, slow random waypoint, 2% churn) is the shared
/// [`scale_family`] preset, so the exhibit, the Criterion bench, and
/// the smoke tests all measure one scenario. Plain DSR (no RSA, no DAD)
/// keeps per-node cost flat so the channel layer — not key generation —
/// is what's being measured.
const S1_HOSTS: usize = 2000;

/// The S2 population size (same `scale_family` shape, 5× S1).
const S2_HOSTS: usize = 10_000;

/// Hosts in S2's secure variant: a full CGA/DAD bootstrap storm, which
/// scales as O(n² · degree) flood receptions — 1,000 hosts in full
/// mode, scaled down in quick mode like every other exhibit.
fn s2_secure_hosts(quick: bool) -> usize {
    if quick {
        250
    } else {
        1000
    }
}

/// Shard count the sharded exhibit cells run: matches the top of the
/// CI matrix, and 8 contiguous field bands keep hundreds of S1 nodes
/// per shard.
const EXHIBIT_SHARDS: usize = 8;

/// One S1 run. The returned report's `wall_s` covers the whole cell —
/// construction, formation beat, flow picking, and traffic — since the
/// build cost is part of what the channel layer buys back.
fn run_s1(channel: ChannelMode, exec: ExecMode, quick: bool, seed: u64) -> RunReport {
    let (n_flows, packets) = if quick { (10, 3) } else { (16, 8) };

    let t0 = Instant::now();
    let mut net = scale_family(S1_HOSTS, seed)
        .channel(channel)
        .exec(exec)
        .plain()
        .build();
    // Formation beat: mobility starts ticking, churn kills are queued.
    net.engine.run_until(SimTime(2_000_000));
    let flows = net.scale_flows(n_flows);
    let mut report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(400),
    ));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    report
}

/// The S2 plain cell: the S1 shape at 10,000 hosts.
pub(crate) fn run_s2_plain(exec: ExecMode, quick: bool, seed: u64) -> RunReport {
    let (n_flows, packets) = if quick { (16, 3) } else { (24, 6) };

    let t0 = Instant::now();
    let mut net = scale_family(S2_HOSTS, seed)
        .channel(ChannelMode::Grid)
        .exec(exec)
        .plain()
        .build();
    net.engine.run_until(SimTime(2_000_000));
    let flows = net.scale_flows(n_flows);
    let mut report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(400),
    ));
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    report
}

/// The S2 secure variant: `n` hosts, uniform at expected degree ~12,
/// joining in a 20 ms-staggered storm — full CGA generation, DAD
/// floods, and DNS name commits — then a short converge check. 384-bit
/// keys keep key *generation* (not the hot path under test) from
/// dominating the wall.
fn run_s2_secure(queue: QueueImpl, quick: bool, seed: u64) -> (RunReport, bool) {
    let n = s2_secure_hosts(quick);
    let t0 = Instant::now();
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .density(12.0)
        .seed(seed)
        .queue(queue)
        .secure_with(ProtocolConfig {
            key_bits: 384,
            ..ProtocolConfig::default()
        })
        .join_stagger(SimDuration::from_millis(20))
        .build();
    let mut report = net.run(&Workload::bootstrap_storm());
    let all_ready = net.all_ready();
    report.wall_s = t0.elapsed().as_secs_f64();
    report.events_per_sec = report.events as f64 / report.wall_s;
    (report, all_ready)
}

/// Wall seconds of one quick-or-full S1 run under the grid channel —
/// the V1 exhibit re-times it to show protocol-layer refactors leave the
/// scale workload's cost unchanged.
pub(crate) fn s1_grid_wall(quick: bool) -> f64 {
    run_s1(ChannelMode::Grid, ExecMode::Single, quick, 1).wall_s
}

/// One fresh quick S1 grid report, for the perf-regression gate.
pub(crate) fn s1_quick_report(exec: ExecMode) -> RunReport {
    run_s1(ChannelMode::Grid, exec, true, 1)
}

/// S1: 2,000-node scale run, grid vs linear channel, single vs sharded
/// executor.
pub fn exhibit_s1(quick: bool) -> String {
    let seed = 1;
    let n = S1_HOSTS;
    let grid = run_s1(ChannelMode::Grid, ExecMode::Single, quick, seed);
    let linear = run_s1(ChannelMode::Linear, ExecMode::Single, quick, seed);
    let sharded = run_s1(
        ChannelMode::Grid,
        ExecMode::Sharded(EXHIBIT_SHARDS),
        quick,
        seed,
    );

    // Differential gates: same seed ⇒ identical simulation universe,
    // down to every machine-independent field of the report — whichever
    // channel indexes receivers and whichever executor runs the loop.
    assert_eq!(
        grid.fingerprint(),
        linear.fingerprint(),
        "grid and linear channels diverged — determinism invariant broken"
    );
    assert_eq!(
        grid.fingerprint(),
        sharded.fingerprint(),
        "sharded and single executors diverged — determinism invariant broken"
    );

    let ratio = linear.wall_s / grid.wall_s;
    let shard_speedup = grid.events_per_sec_engine / sharded.events_per_sec_engine.max(1.0);
    let mut t = Table::new(
        format!(
            "S1 — scale: {n} plain-DSR nodes, mobility + churn ({} flows)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "cell",
            "wall (s)",
            "events",
            "events/s",
            "ev/s engine",
            "delivery",
            "mean degree",
        ],
    );
    for (name, r) in [
        ("grid/single", &grid),
        ("linear/single", &linear),
        ("grid/sharded:8", &sharded),
    ] {
        t.rowv(vec![
            name.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.events_per_sec_engine),
            format!("{:.3}", r.delivery_or_nan()),
            format!("{:.1}", r.mean_degree.unwrap_or(f64::NAN)),
        ]);
    }
    t.note(format!(
        "identical observables under both channels and both executors (differential gates); linear/grid wall ratio {ratio:.2}×"
    ));
    t.note(format!(
        "single/sharded engine-rate ratio {shard_speedup:.2}× (sharded:{EXHIBIT_SHARDS} on {} core(s))",
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    ));
    t.note(format!(
        "{} of {} nodes killed mid-run; flows chosen inside the largest radio component",
        grid.nodes_killed, n
    ));

    let section = s1_section_json(n, &grid, &linear, &sharded, ratio);
    match write_scale_section(&scale_json_path(), "s1", &section, quick) {
        Err(e) => t.note(format!("BENCH_scale.json not written: {e}")),
        Ok(()) => t.note(format!("wrote {} (s1 section)", scale_json_path())),
    };
    t.render()
}

/// S2: 10,000-node plain run under both executors (the scale-level
/// sharded-vs-single gate) plus the secure bootstrap storm under both
/// queue implementations (the scale-level wheel-vs-heap gate).
pub fn exhibit_s2(quick: bool) -> String {
    let seed = 1;
    let plain = run_s2_plain(ExecMode::Single, quick, seed);
    let plain_sharded = run_s2_plain(ExecMode::Sharded(EXHIBIT_SHARDS), quick, seed);

    let (sec_wheel, ready_wheel) = run_s2_secure(QueueImpl::Wheel, quick, seed);
    let (sec_heap, ready_heap) = run_s2_secure(QueueImpl::Heap, quick, seed);

    // Differential gates: the executor and the pending-event store are
    // scheduling machinery, not model changes — the 10k plain run must
    // be one universe under both executors, and the secure storm
    // (timer-heavy DAD, staggered joins, signature checks) one universe
    // under both queues.
    assert_eq!(
        plain.fingerprint(),
        plain_sharded.fingerprint(),
        "sharded and single executors diverged at 10k — determinism invariant broken"
    );
    assert_eq!(
        sec_wheel.fingerprint(),
        sec_heap.fingerprint(),
        "wheel and heap queues diverged — event-order invariant broken"
    );
    assert!(
        ready_wheel && ready_heap,
        "secure storm left hosts unjoined — scenario shape broken"
    );

    let n_sec = s2_secure_hosts(quick);
    let ratio = sec_heap.wall_s / sec_wheel.wall_s;
    let mut t = Table::new(
        format!(
            "S2 — scale: {S2_HOSTS} plain-DSR nodes + secure {n_sec}-host DAD storm ({} mode)",
            if quick { "quick" } else { "full" }
        ),
        &[
            "cell",
            "queue",
            "wall (s)",
            "events",
            "events/s",
            "ev/s engine",
            "delivery",
        ],
    );
    let delivery_cell = |r: &RunReport| match r.delivery_ratio {
        Some(d) => format!("{d:.3}"),
        None => "—".to_string(), // the storm sends no data traffic
    };
    for (cell, queue, r) in [
        (format!("plain {S2_HOSTS}"), "wheel", &plain),
        (
            format!("plain {S2_HOSTS} sharded:{EXHIBIT_SHARDS}"),
            "wheel",
            &plain_sharded,
        ),
        (format!("secure {n_sec}"), "wheel", &sec_wheel),
        (format!("secure {n_sec}"), "heap", &sec_heap),
    ] {
        t.rowv(vec![
            cell,
            queue.to_string(),
            format!("{:.2}", r.wall_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.events_per_sec_engine),
            delivery_cell(r),
        ]);
    }
    t.note(format!(
        "identical secure universes under both queues (differential gate); heap/wheel wall ratio {ratio:.2}×"
    ));
    t.note(format!(
        "plain cell: {} of {} killed mid-run, mean degree {:.1}; secure cell: all {} hosts completed DAD",
        plain.nodes_killed,
        S2_HOSTS,
        plain.mean_degree.unwrap_or(f64::NAN),
        n_sec,
    ));

    let section = s2_section_json(n_sec, &plain, &plain_sharded, &sec_wheel, &sec_heap, ratio);
    match write_scale_section(&scale_json_path(), "s2", &section, quick) {
        Err(e) => t.note(format!("BENCH_scale.json not written: {e}")),
        Ok(()) => t.note(format!("wrote {} (s2 section)", scale_json_path())),
    };
    t.render()
}

fn scale_json_path() -> String {
    std::env::var("BENCH_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_string())
}

fn s1_section_json(
    n: usize,
    grid: &RunReport,
    linear: &RunReport,
    sharded: &RunReport,
    ratio: f64,
) -> String {
    // Crypto counters of the grid run: total verification demand and the
    // cache hit rate (null until the scale family runs secure nodes).
    let demand = grid.crypto.demand();
    let hit_rate = if demand > 0 {
        format!("{:.4}", grid.crypto.cached as f64 / demand as f64)
    } else {
        "null".to_string()
    };
    format!(
        concat!(
            "{{\n",
            "    \"n_hosts\": {},\n",
            "    \"sim_secs\": {:.1},\n",
            "    \"delivery_ratio\": {:.4},\n",
            "    \"mean_degree\": {:.2},\n",
            "    \"grid\": {},\n",
            "    \"linear\": {},\n",
            "    \"sharded\": {},\n",
            "    \"linear_over_grid_wall_ratio\": {:.3},\n",
            "    \"crypto\": {{\"total_verifications\": {}, \"cached\": {}, \"cache_hit_rate\": {}}}\n",
            "  }}"
        ),
        n,
        grid.sim_s,
        grid.delivery_or_nan(),
        grid.mean_degree.unwrap_or(f64::NAN),
        grid.to_json(),
        linear.to_json(),
        sharded.to_json(),
        ratio,
        demand,
        grid.crypto.cached,
        hit_rate,
    )
}

fn s2_section_json(
    n_sec: usize,
    plain: &RunReport,
    plain_sharded: &RunReport,
    sec_wheel: &RunReport,
    sec_heap: &RunReport,
    heap_over_wheel: f64,
) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"n_hosts\": {},\n",
            "    \"plain\": {},\n",
            "    \"plain_sharded\": {},\n",
            "    \"secure_hosts\": {},\n",
            "    \"secure\": {},\n",
            "    \"secure_heap\": {},\n",
            "    \"heap_over_wheel_wall_ratio\": {:.3}\n",
            "  }}"
        ),
        S2_HOSTS,
        plain.to_json(),
        plain_sharded.to_json(),
        n_sec,
        sec_wheel.to_json(),
        sec_heap.to_json(),
        heap_over_wheel,
    )
}

/// Write one exhibit's section into the scale JSON at `path`,
/// preserving the other exhibit's last record when it was produced in
/// the same mode (quick and full are different workloads; their numbers
/// must not cohabit one file).
fn write_scale_section(path: &str, key: &str, section: &str, quick: bool) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let same_mode = read_bool(&existing, "quick") == Some(quick);
    let other_key = if key == "s1" { "s2" } else { "s1" };
    let other = if same_mode {
        extract_object(&existing, other_key)
    } else {
        None
    };
    // S1 always serializes first: the V1 exhibit's naive reader takes
    // the file's first `"grid"` object as S1's.
    let (first, second) = if key == "s1" {
        (Some(section.to_string()), other)
    } else {
        (other, Some(section.to_string()))
    };
    let mut body = format!("{{\n  \"quick\": {quick}");
    for (k, v) in [("s1", first), ("s2", second)] {
        if let Some(v) = v {
            body.push_str(&format!(",\n  \"{k}\": {v}"));
        }
    }
    body.push_str("\n}\n");
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_secure::scenario::field_for_density;
    use manet_sim::RadioConfig;

    /// The full S1 is exercised by the exhibit smoke test; here just the
    /// shape helpers.
    #[test]
    fn s1_density_sizing_hits_target_degree() {
        let radio = RadioConfig::default();
        let field = field_for_density(S1_HOSTS, radio.range, 15.0);
        // A = n·πr²/deg ⇒ expected degree back out of the chosen field.
        let deg = S1_HOSTS as f64 * std::f64::consts::PI * radio.range * radio.range
            / (field.width * field.height);
        assert!((deg - 15.0).abs() < 0.5, "expected degree ~15, got {deg}");
    }

    #[test]
    fn sections_merge_and_survive_rewrites() {
        let dir = std::env::temp_dir().join("scale_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pathbuf = dir.join("BENCH_scale.json");
        let _ = std::fs::remove_file(&pathbuf);
        let path = pathbuf.to_str().unwrap();

        write_scale_section(path, "s1", "{\"v\": 1}", true).unwrap();
        write_scale_section(path, "s2", "{\"w\": 2}", true).unwrap();
        // Re-writing s1 must keep the s2 record.
        write_scale_section(path, "s1", "{\"v\": 3}", true).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(extract_object(&text, "s1").as_deref(), Some("{\"v\": 3}"));
        assert_eq!(extract_object(&text, "s2").as_deref(), Some("{\"w\": 2}"));
        let s1_at = text.find("\"s1\"").unwrap();
        let s2_at = text.find("\"s2\"").unwrap();
        assert!(
            s1_at < s2_at,
            "s1 must serialize before s2 (V1 reader contract)"
        );

        // A mode switch drops the stale other-mode section.
        write_scale_section(path, "s2", "{\"w\": 9}", false).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(extract_object(&text, "s1"), None);
        assert!(text.contains("\"quick\": false"));
    }

    #[test]
    fn s2_secure_storm_is_identical_under_both_queues_at_tiny_scale() {
        // The full gate runs inside exhibit_s2; pin a miniature version
        // here so `cargo test` exercises the wheel-vs-heap secure
        // differential without the exhibit's wall cost.
        let run = |queue| {
            let mut net = ScenarioBuilder::new()
                .hosts(8)
                .placement(Placement::Uniform)
                .density(10.0)
                .seed(5)
                .queue(queue)
                .secure_with(ProtocolConfig {
                    key_bits: 384,
                    ..ProtocolConfig::default()
                })
                .join_stagger(SimDuration::from_millis(20))
                .build();
            let report = net.run(&Workload::bootstrap_storm());
            report.fingerprint()
        };
        assert_eq!(run(QueueImpl::Wheel), run(QueueImpl::Heap));
    }

    #[test]
    fn s2_secure_storm_is_identical_under_both_executors_at_tiny_scale() {
        // The full sharded-vs-single gate runs inside exhibit_s1/s2;
        // this miniature keeps the scale-shaped differential (staggered
        // joins, DAD timers, kills) in plain `cargo test`.
        let run = |exec| {
            let mut net = ScenarioBuilder::new()
                .hosts(8)
                .placement(Placement::Uniform)
                .density(10.0)
                .seed(5)
                .exec(exec)
                .churn(2, (SimTime(2_000_000), SimTime(6_000_000)))
                .secure_with(ProtocolConfig {
                    key_bits: 384,
                    ..ProtocolConfig::default()
                })
                .join_stagger(SimDuration::from_millis(20))
                .build();
            let report = net.run(&Workload::bootstrap_storm());
            report.fingerprint()
        };
        let single = run(manet_sim::ExecMode::Single);
        for k in [1, 3, 8] {
            assert_eq!(
                single,
                run(manet_sim::ExecMode::Sharded(k)),
                "sharded({k}) secure storm diverged from single"
            );
        }
    }

    #[test]
    fn empty_flow_report_round_trips_through_jsonscan() {
        use crate::jsonscan::read_number;
        // No flows sent: delivery_ratio is None and serializes as null;
        // the scanner must read the document instead of choking on it.
        let mut net = ScenarioBuilder::new().hosts(2).plain().build();
        let report = net.run(&Workload::flows(
            Vec::new(),
            0,
            SimDuration::from_millis(10),
        ));
        assert_eq!(report.delivery_ratio, None, "empty flow list sent data?");
        let j = report.to_json();
        assert!(
            read_number(&j, "delivery_ratio").is_some_and(f64::is_nan),
            "null must round-trip as present-but-NaN: {j}"
        );
        assert_eq!(read_number(&j, "events"), Some(report.events as f64));
        assert_eq!(
            read_number(&j, "nodes_killed"),
            Some(report.nodes_killed as f64)
        );
        assert!(!j.contains("NaN"), "raw NaN leaked into JSON: {j}");
    }
}
