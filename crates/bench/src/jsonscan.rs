//! Minimal scanners for the bench crate's own hand-rolled JSON.
//!
//! The workspace is offline (no serde), and every `BENCH_*.json` /
//! baseline file is emitted by this crate's own naive writers: flat
//! keys, numeric/bool/plain-string values, no braces inside strings.
//! Everything that reads those files back — the V1 exhibit's previous-S1
//! lookup, the S1/S2 section merge, the perf-gate baseline — goes
//! through these three helpers so the (deliberately naive) parsing
//! rules live in exactly one place.

/// The JSON number following `"key":`, wherever it first appears. A
/// `null` value (how our writers spell NaN/infinity, which JSON cannot
/// represent) reads back as `Some(NaN)` — present but not finite —
/// distinct from `None` for a missing key.
pub(crate) fn read_number(text: &str, key: &str) -> Option<f64> {
    let raw = scalar_after(text, key)?;
    if raw == "null" {
        return Some(f64::NAN);
    }
    raw.parse().ok()
}

/// The JSON bool following `"key":`, wherever it first appears.
pub(crate) fn read_bool(text: &str, key: &str) -> Option<bool> {
    scalar_after(text, key)?.parse().ok()
}

fn scalar_after<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let rest = text.split(&format!("\"{key}\":")).nth(1)?;
    Some(rest.split([',', '}', '\n']).next()?.trim())
}

/// The balanced-brace object following the first `"key":`. Sound for
/// our own serialization because no emitted string value contains a
/// brace.
pub(crate) fn extract_object(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\n  \"quick\": true,\n  \"s1\": {\"a\": {\"b\": 1}, \"wall_s\": 0.638},\n  \"s2\": {\"d\": 3}\n}\n";

    #[test]
    fn numbers_and_bools_parse() {
        assert_eq!(read_number(SAMPLE, "wall_s"), Some(0.638));
        assert_eq!(read_number(SAMPLE, "d"), Some(3.0));
        assert_eq!(read_bool(SAMPLE, "quick"), Some(true));
        assert_eq!(read_number(SAMPLE, "nope"), None);
        assert_eq!(read_bool(SAMPLE, "wall_s"), None);
    }

    #[test]
    fn null_reads_as_present_nan_not_missing() {
        let text = "{\"delivery_ratio\": null, \"x\": 1}";
        let v = read_number(text, "delivery_ratio");
        assert!(v.is_some_and(f64::is_nan), "null must read back, as NaN");
        assert_eq!(read_number(text, "absent"), None, "missing stays None");
    }

    #[test]
    fn objects_extract_with_balanced_braces() {
        assert_eq!(
            extract_object(SAMPLE, "s1").as_deref(),
            Some("{\"a\": {\"b\": 1}, \"wall_s\": 0.638}")
        );
        assert_eq!(extract_object(SAMPLE, "s2").as_deref(), Some("{\"d\": 3}"));
        assert_eq!(extract_object(SAMPLE, "s3"), None);
        assert_eq!(extract_object("{\"s1\": {", "s1"), None, "unterminated");
    }
}
