//! The campaign CLI: run declarative parameter studies from JSON plans.
//!
//! ```sh
//! cargo run --release -p manet-bench --bin campaign -- run campaigns/s1_density.json
//! cargo run --release -p manet-bench --bin campaign -- run campaigns/smoke.json --out report.json
//! cargo run --release -p manet-bench --bin campaign -- print campaigns/secure_attack.json
//! ```
//!
//! `run` executes every (cell × seed) job across cores, prints the
//! human summary, writes the canonical report
//! (`BENCH_campaign_<name>.json` unless `--out` says otherwise), and
//! exits nonzero if any tolerance check fails. The canonical report is
//! byte-identical across runs of the same plan — CI's `campaign-smoke`
//! step diffs two back-to-back runs.
//!
//! `print` expands the sweep without simulating anything: each cell's
//! factor assignments plus the fully-resolved scenario document of the
//! first cell — the quick way to check what a plan actually sweeps.
//! The file-format reference is `docs/SCENARIO.md`.

use manet_secure::campaign::{self, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, plan_path) = match (args.first().map(String::as_str), args.get(1)) {
        (Some(cmd @ ("run" | "print")), Some(path)) => (cmd, PathBuf::from(path)),
        _ => {
            eprintln!("usage: campaign run <plan.json> [--out <report.json>]");
            eprintln!("       campaign print <plan.json>");
            return ExitCode::from(2);
        }
    };

    let plan = match campaign::load_plan(&plan_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", plan_path.display());
            return ExitCode::from(2);
        }
    };

    match cmd {
        "print" => print_plan(&plan),
        _ => run_plan(&plan, out_path(&args, &plan.name)),
    }
}

fn out_path(args: &[String], name: &str) -> PathBuf {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_campaign_{name}.json")))
}

fn run_plan(plan: &campaign::CampaignPlan, out: PathBuf) -> ExitCode {
    let report = match campaign::run_campaign(plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.summary_table());
    let doc = report.canonical_json();
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("could not write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("canonical report → {}", out.display());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("tolerance checks FAILED");
        ExitCode::FAILURE
    }
}

fn print_plan(plan: &campaign::CampaignPlan) -> ExitCode {
    let cells = plan.cells();
    println!(
        "campaign {} · {} cells × {} seeds",
        plan.name,
        cells.len(),
        plan.seeds.len()
    );
    for (i, cell) in cells.iter().enumerate() {
        let assigns: Vec<String> = cell
            .iter()
            .map(|(p, v)| format!("{p} = {}", campaign::json::compact(v)))
            .collect();
        println!(
            "  cell {i}: {}",
            if assigns.is_empty() {
                "(base)".to_string()
            } else {
                assigns.join(", ")
            }
        );
    }
    // Resolve and echo the first cell's full document so typos surface
    // before anyone pays for a run.
    match plan
        .document_for(&cells[0])
        .and_then(|doc| ScenarioSpec::from_json(&doc))
    {
        Ok(spec) => {
            println!("\nresolved scenario of cell 0 (defaults filled in):");
            print!("{}", spec.to_canonical_string());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cell 0 does not resolve: {e}");
            ExitCode::from(2)
        }
    }
}
