//! Regenerate every table and figure of the paper (plus the quantified
//! evaluation and ablations; see DESIGN.md §4 for the index).
//!
//! ```sh
//! cargo run --release -p manet-bench --bin tables            # everything, quick seeds
//! cargo run --release -p manet-bench --bin tables -- --full  # everything, 10 seeds
//! cargo run --release -p manet-bench --bin tables -- --exhibit e3
//! cargo run --release -p manet-bench --bin tables -- --check-perf      # CI gate
//! cargo run --release -p manet-bench --bin tables -- --write-baseline  # rebaseline
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");

    // Perf-regression gate: fresh S1/S2 engine rates vs the committed
    // baseline; exits nonzero on a regression beyond tolerance.
    if args.iter().any(|a| a == "--check-perf") {
        let (report, pass) =
            manet_bench::perf_gate::check(&manet_bench::perf_gate::baseline_path());
        println!("{report}");
        std::process::exit(if pass { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "--write-baseline") {
        match manet_bench::perf_gate::write_baseline(&manet_bench::perf_gate::baseline_path()) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("baseline not written: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let selected: Vec<String> = args
        .iter()
        .position(|a| a == "--exhibit")
        .and_then(|i| args.get(i + 1))
        .map(|id| vec![id.clone()])
        .unwrap_or_else(|| {
            manet_bench::EXHIBITS
                .iter()
                .map(|s| s.to_string())
                .collect()
        });

    if quick {
        println!("(quick mode: 3 seeds per cell; pass --full for 10)\n");
    }
    for id in &selected {
        let t0 = Instant::now();
        match manet_bench::render(id, quick) {
            Some(text) => {
                println!("{text}");
                println!("[{id} generated in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!(
                    "unknown exhibit '{id}'; available: {:?}",
                    manet_bench::EXHIBITS
                );
                std::process::exit(2);
            }
        }
    }
}
