//! Exhibits T1, T2, F1, F2, F3 — the paper's own tables and figures,
//! regenerated from the live implementation.

use crate::table::Table;
use manet_crypto::KeyPair;
use manet_secure::scenario::{ScenarioBuilder, Workload};
use manet_secure::{HostIdentity, ProtocolConfig, SecureNode};
use manet_sim::{Engine, EngineConfig, Mobility, Pos, RadioConfig, SimDuration, SimTime};
use manet_wire::{
    sigdata, Arep, Areq, Challenge, Crep, DomainName, Drep, IdentityProof, Message, PlainRerr,
    PlainRrep, PlainRreq, Rerr, RouteRecord, Rrep, Rreq, SecureRouteRecord, Seq, SrrEntry,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn sample_identity(seed: u64) -> HostIdentity {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    HostIdentity::generate(512, &mut rng)
}

fn sample_rr(ids: &[&HostIdentity]) -> RouteRecord {
    RouteRecord(ids.iter().map(|i| i.ip()).collect())
}

/// Table 1: the seven control messages — paper parameters and measured
/// wire sizes (512-bit identities, 3-relay routes), next to the plain-DSR
/// counterpart where one exists.
pub fn exhibit_t1() -> String {
    let s = sample_identity(1);
    let d = sample_identity(2);
    let r1 = sample_identity(3);
    let r2 = sample_identity(4);
    let r3 = sample_identity(5);
    let seq = Seq(7);
    let ch = Challenge(0xC4A11E46E);
    let dn = DomainName::new("host.manet").unwrap();
    let rr = sample_rr(&[&r1, &r2, &r3]);

    let proof = |id: &HostIdentity, payload: &[u8]| IdentityProof {
        pk: id.public().clone(),
        rn: id.rn(),
        sig: id.sign(payload),
    };

    let areq = Message::Areq(Areq {
        sip: s.ip(),
        seq,
        dn: Some(dn.clone()),
        ch,
        rr: rr.clone(),
    });
    let arep = Message::Arep(Arep {
        sip: s.ip(),
        rr: rr.clone(),
        proof: proof(&r1, &sigdata::arep(&s.ip(), ch)),
    });
    let drep = Message::Drep(Drep {
        sip: s.ip(),
        rr: rr.clone(),
        sig: d.sign(&sigdata::drep(&dn, ch)),
    });
    let srr = SecureRouteRecord(
        [&r1, &r2, &r3]
            .iter()
            .map(|id| SrrEntry {
                ip: id.ip(),
                proof: proof(id, &sigdata::srr_hop(&id.ip(), seq)),
            })
            .collect(),
    );
    let rreq = Message::Rreq(Rreq {
        sip: s.ip(),
        dip: d.ip(),
        seq,
        srr,
        src_proof: proof(&s, &sigdata::rreq_src(&s.ip(), seq)),
    });
    let rrep = Message::Rrep(Rrep {
        sip: s.ip(),
        dip: d.ip(),
        seq,
        rr: rr.clone(),
        proof: proof(&d, &sigdata::rrep(&s.ip(), seq, &rr)),
    });
    let crep = Message::Crep(Crep {
        s2ip: r1.ip(),
        sip: s.ip(),
        dip: d.ip(),
        seq2: Seq(9),
        rr_s2_to_s: rr.clone(),
        s_proof: proof(&s, &sigdata::crep_cache_holder(&r1.ip(), Seq(9), &rr)),
        orig_seq: seq,
        rr_s_to_d: rr.clone(),
        d_proof: proof(&d, &sigdata::rrep(&s.ip(), seq, &rr)),
    });
    let rerr = Message::Rerr(Rerr {
        iip: r1.ip(),
        i2ip: r2.ip(),
        proof: proof(&r1, &sigdata::rerr(&r1.ip(), &r2.ip())),
    });

    let p_rreq = Message::PlainRreq(PlainRreq {
        sip: s.ip(),
        dip: d.ip(),
        seq,
        rr: rr.clone(),
    });
    let p_rrep = Message::PlainRrep(PlainRrep {
        sip: s.ip(),
        dip: d.ip(),
        seq,
        rr: rr.clone(),
    });
    let p_rerr = Message::PlainRerr(PlainRerr {
        iip: r1.ip(),
        i2ip: r2.ip(),
    });

    let mut t = Table::new(
        "T1 — Table 1: control messages (wire sizes, 512-bit keys, 3-relay routes)",
        &[
            "Type",
            "Function",
            "Parameters (paper)",
            "bytes",
            "plain-DSR bytes",
        ],
    );
    let rows: Vec<(&str, &str, &str, &Message, Option<&Message>)> = vec![
        (
            "AREQ",
            "Address REQuest",
            "(SIP, seq, DN, ch, RR)",
            &areq,
            None,
        ),
        (
            "AREP",
            "Address REPly",
            "(SIP, RR, [SIP, ch]RSK, RPK, Rrn)",
            &arep,
            None,
        ),
        (
            "DREP",
            "DNS server REPly",
            "(SIP, RR, [DN, ch]NSK)",
            &drep,
            None,
        ),
        (
            "RREQ",
            "Route REQuest",
            "(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)",
            &rreq,
            Some(&p_rreq),
        ),
        (
            "RREP",
            "Route REPly",
            "(SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)",
            &rrep,
            Some(&p_rrep),
        ),
        (
            "CREP",
            "Cached route REPly",
            "(S'IP, SIP, DIP, RR, [.]SSK, SPK, Srn, [.]DSK, DPK, Drn)",
            &crep,
            None,
        ),
        (
            "RERR",
            "Route ERRor",
            "(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)",
            &rerr,
            Some(&p_rerr),
        ),
    ];
    for (ty, f, params, msg, plain) in rows {
        t.rowv(vec![
            ty.into(),
            f.into(),
            params.into(),
            msg.wire_size().to_string(),
            plain
                .map(|m| m.wire_size().to_string())
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    t.note("security cost per message ≈ one 64-byte signature + ~70-byte key + 8-byte rn per identity proof");
    t.note("RREQ grows by one identity proof per hop (the SRR) — see ablation A1");
    t.render()
}

/// Table 2: notation, with live values from a generated identity.
pub fn exhibit_t2() -> String {
    let x = sample_identity(7);
    let sig = x.sign(b"example message");
    let mut t = Table::new(
        "T2 — Table 2: symbols and notations",
        &["Symbol", "Description", "live example / size"],
    );
    t.rowv(vec![
        "XIP".into(),
        "IP address of node X".into(),
        x.ip().to_string(),
    ]);
    t.rowv(vec![
        "XSK".into(),
        "private key of host X".into(),
        "512-bit RSA (CRT form), never transmitted".into(),
    ]);
    t.rowv(vec![
        "XPK".into(),
        "public key of host X".into(),
        format!("{} bytes on the wire", x.public().to_bytes().len()),
    ]);
    t.rowv(vec![
        "Xrn".into(),
        "random number hashing X's IP".into(),
        format!("{:#018x}", x.rn()),
    ]);
    t.rowv(vec![
        "DN".into(),
        "domain name".into(),
        "host.manet (LDH labels, ≤255 bytes)".into(),
    ]);
    t.rowv(vec![
        "ch".into(),
        "random challenge".into(),
        "64-bit, fresh per AREQ/query".into(),
    ]);
    t.rowv(vec![
        "seq".into(),
        "unique sequence number per initiator".into(),
        "64-bit monotonic".into(),
    ]);
    t.rowv(vec![
        "RR".into(),
        "route record of traversed hosts".into(),
        "16 bytes per hop + 2-byte count".into(),
    ]);
    t.rowv(vec![
        "SRR".into(),
        "secure route record (RR + identity proofs)".into(),
        "adds ([IIP,seq]ISK, IPK, Irn) per hop".into(),
    ]);
    t.rowv(vec![
        "[msg]XSK".into(),
        "msg encrypted by X's private key".into(),
        format!(
            "RSA signature w/ SHA-256 recovery frame, {} bytes",
            sig.to_bytes().len()
        ),
    ]);
    t.render()
}

/// Figure 1: the CGA address layout, decomposed from a live address.
pub fn exhibit_f1() -> String {
    let x = sample_identity(8);
    let ip = x.ip();
    let mut t = Table::new(
        "F1 — Figure 1: CGA site-local address layout",
        &["field", "bits", "value", "check"],
    );
    t.rowv(vec![
        "site-local prefix".into(),
        "10".into(),
        "1111 1110 11 (fec0::/10)".into(),
        format!("is_site_local = {}", ip.is_site_local()),
    ]);
    t.rowv(vec![
        "all zeros".into(),
        "38".into(),
        format!("{:#x}", ip.zero_field()),
        format!("zero = {}", ip.zero_field() == 0),
    ]);
    t.rowv(vec![
        "subnet ID".into(),
        "16".into(),
        format!("{:#06x}", ip.subnet_id()),
        "fixed 0 in a MANET".into(),
    ]);
    t.rowv(vec![
        "H(PK, rn)".into(),
        "64".into(),
        format!("{:#018x}", ip.interface_id()),
        format!(
            "verify(ip, PK, rn) = {}",
            manet_wire::cga::verify(&ip, x.public(), x.rn()).is_ok()
        ),
    ]);
    t.note(format!("full address: {ip}"));
    t.note("birthday bound: P[any collision among n honest nodes] ≈ n²/2⁶⁵; n=1000 → ~2.7e-14");
    t.note("an adversary must invert H (SHA-256/64) or steal SK to claim an address");
    t.render()
}

/// Build and run the Figure 2 collision scenario with tracing.
fn run_figure2() -> Engine {
    let cfg = ProtocolConfig::default();
    let mut engine = Engine::new(EngineConfig {
        seed: 60,
        trace: true,
        radio: RadioConfig {
            loss: 0.0,
            ..RadioConfig::default()
        },
        ..EngineConfig::default()
    });
    let dns = SecureNode::new_dns(cfg.clone(), Vec::new(), engine.rng());
    let dns_pk = dns.public_key().clone();
    let kp_r = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(4242));
    let kp_s = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(4242));
    let mut ident_r = HostIdentity::from_keypair(kp_r, engine.rng());
    let mut ident_s = HostIdentity::from_keypair(kp_s, engine.rng());
    ident_r.set_rn(0xF1C2);
    ident_s.set_rn(0xF1C2);
    let r = SecureNode::with_identity(
        cfg.clone(),
        ident_r,
        dns_pk.clone(),
        Some(DomainName::new("r.manet").unwrap()),
        Default::default(),
    );
    let s = SecureNode::with_identity(
        cfg,
        ident_s,
        dns_pk,
        Some(DomainName::new("s.manet").unwrap()),
        Default::default(),
    );
    engine.add_node(Box::new(dns), Pos::new(0.0, 0.0), Mobility::Static);
    engine.add_node(Box::new(r), Pos::new(180.0, 0.0), Mobility::Static);
    engine.add_node_at(
        Box::new(s),
        Pos::new(360.0, 0.0),
        Mobility::Static,
        SimTime(2_000_000),
    );
    engine.run_until(SimTime(10_000_000));
    engine
}

/// Figure 2: the secure DAD duplicate-detection exchange as a trace.
pub fn exhibit_f2() -> String {
    let engine = run_figure2();
    let mut out = String::new();
    out.push_str("== F2 — Figure 2: secure DAD detecting a duplicate address ==\n");
    out.push_str("(n0 = DNS, n1 = R [address owner], n2 = S [joining with R's address])\n\n");
    for e in engine.tracer().events() {
        if matches!(e.kind, "AREQ" | "AREP" | "DREP" | "DAD" | "DNS") {
            out.push_str(&format!("{e}\n"));
        }
    }
    let m = engine.metrics();
    out.push_str(&format!(
        "\noutcome: collisions detected = {}, pending registration cancelled at DNS = {}, DAD rounds = {}\n",
        m.counter("dad.collisions"),
        m.counter("dns.reg_cancelled"),
        m.counter("dad.attempts"),
    ));
    out
}

/// Figure 3: RREQ/RREP and the cached CREP as a trace.
pub fn exhibit_f3() -> String {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(61)
        .trace(true)
        .secure()
        .build();
    assert!(net.bootstrap());
    net.run(&Workload::flows(
        vec![(0, 4)],
        1,
        SimDuration::from_millis(400),
    ));
    net.run(&Workload::flows(
        vec![(1, 4)],
        1,
        SimDuration::from_millis(400),
    ));

    let mut out = String::new();
    out.push_str("== F3 — Figure 3: secure route discovery, route reply, cached route reply ==\n");
    out.push_str("(left half: S=h0 discovers D=h4; right half: S'=h1 answered from S's cache)\n\n");
    let bootstrap_end = net.last_join + SimDuration::from_secs(3);
    for e in net.engine.tracer().events() {
        if e.time < bootstrap_end {
            continue; // skip the DAD phase; Figure 3 is about routing
        }
        if matches!(e.kind, "RREQ" | "RREP" | "CREP" | "ROUTE") {
            out.push_str(&format!("{e}\n"));
        }
    }
    let m = net.engine.metrics();
    out.push_str(&format!(
        "\noutcome: discovered = {}, via CREP = {}, verification failures = {}\n",
        m.counter("route.discovered"),
        m.counter("route.discovered_via_crep"),
        m.counter("sec.rreq_rejected")
            + m.counter("sec.rrep_rejected")
            + m.counter("sec.crep_rejected"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_secure::Envelope;
    use manet_sim::Dir;
    use manet_wire::{Ack, Data, Ipv6Addr};

    #[test]
    fn t1_lists_all_seven_messages() {
        let s = exhibit_t1();
        for kind in ["AREQ", "AREP", "DREP", "RREQ", "RREP", "CREP", "RERR"] {
            assert!(s.contains(kind), "missing {kind}");
        }
    }

    #[test]
    fn t2_lists_all_symbols() {
        let s = exhibit_t2();
        for sym in [
            "XIP", "XSK", "XPK", "Xrn", "DN", "ch", "seq", "RR", "SRR", "[msg]XSK",
        ] {
            assert!(s.contains(sym), "missing {sym}");
        }
    }

    #[test]
    fn f1_validates_layout() {
        let s = exhibit_f1();
        assert!(s.contains("fec0::/10"));
        assert!(s.contains("verify(ip, PK, rn) = true"));
        assert!(s.contains("zero = true"));
    }

    #[test]
    fn f2_trace_shows_the_exchange() {
        let s = exhibit_f2();
        assert!(s.contains("AREQ"));
        assert!(s.contains("AREP"));
        assert!(s.contains("collisions detected = 1"));
        assert!(s.contains("pending registration cancelled at DNS = 1"));
    }

    #[test]
    fn f3_trace_shows_rrep_and_crep() {
        let s = exhibit_f3();
        assert!(s.contains("RREQ"));
        assert!(s.contains("RREP"));
        assert!(s.contains("CREP"));
        assert!(s.contains("verification failures = 0"));
    }

    #[test]
    fn dir_is_used_in_traces() {
        // Compile-time use of Dir, plus a sanity check the enum renders.
        assert_eq!(format!("{}", Dir::Tx).trim(), "TX");
    }

    #[test]
    fn ipv6_in_t2_is_site_local() {
        let x = sample_identity(7);
        let _: Ipv6Addr = x.ip();
        assert!(x.ip().is_site_local());
    }

    #[test]
    fn sample_messages_have_positive_sizes() {
        let s = sample_identity(1);
        let msg = Message::Ack(Ack {
            sip: s.ip(),
            dip: s.ip(),
            seq: Seq(1),
            route: RouteRecord::new(),
        });
        let env = Envelope::broadcast(s.ip(), msg);
        assert!(env.wire_size() > 16);
        let _ = Data {
            sip: s.ip(),
            dip: s.ip(),
            seq: Seq(1),
            route: RouteRecord::new(),
            payload: vec![],
        };
    }
}
