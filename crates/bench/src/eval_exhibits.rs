//! Exhibits E1–E5 and the ablations — the quantified versions of the
//! paper's claims (the paper itself reports no numbers; DESIGN.md §4
//! records the expected *shapes*).

use crate::table::Table;
use manet_crypto::KeyPair;
use manet_secure::scenario::{Placement, ScenarioBuilder, SecureBuilder, BYPASS_ATTACKER};
use manet_secure::{attacks, Behavior, HostIdentity, ProtocolConfig, SecureNode};
use manet_sim::runner;
use manet_sim::{Engine, EngineConfig, Mobility, Pos, RadioConfig, SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The E3/E4/A3/A5 shape: five hosts on the bypass topology with one
/// attacker slot on the short path.
fn bypass_secure(seed: u64, attackers: Vec<(usize, Behavior)>) -> SecureBuilder {
    ScenarioBuilder::new()
        .hosts(5)
        .placement(Placement::Bypass)
        .adversaries(attackers)
        .seed(seed)
        .secure()
}

fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        (1..=3).collect()
    } else {
        (1..=10).collect()
    }
}

// ---------------------------------------------------------------------------
// E1 — secure DAD: duplicate detection across hop distances
// ---------------------------------------------------------------------------

/// One forced-duplicate run: the owner sits `hops` hops from the joiner
/// on a relay chain. Returns (detected, detection latency in seconds).
fn dad_duplicate_cell(hops: usize, seed: u64, loss: f64) -> (bool, f64) {
    let cfg = ProtocolConfig::default();
    let mut engine = Engine::new(EngineConfig {
        seed,
        radio: RadioConfig {
            loss,
            ..RadioConfig::default()
        },
        ..EngineConfig::default()
    });
    let dns = SecureNode::new_dns(cfg.clone(), Vec::new(), engine.rng());
    let dns_pk = dns.public_key().clone();

    // Shared identity for owner and joiner.
    let key_seed = seed.wrapping_mul(0x9e37).wrapping_add(hops as u64);
    let kp_a = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(key_seed));
    let kp_b = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(key_seed));
    let mut owner_ident = HostIdentity::from_keypair(kp_a, engine.rng());
    let mut joiner_ident = HostIdentity::from_keypair(kp_b, engine.rng());
    owner_ident.set_rn(1);
    joiner_ident.set_rn(1);

    // Chain: DNS, owner, relay₁ … relayₕ₋₁, joiner — owner `hops` hops
    // from the joiner.
    engine.add_node(Box::new(dns), Pos::new(0.0, 0.0), Mobility::Static);
    let owner = SecureNode::with_identity(
        cfg.clone(),
        owner_ident,
        dns_pk.clone(),
        None,
        Behavior::default(),
    );
    engine.add_node(Box::new(owner), Pos::new(180.0, 0.0), Mobility::Static);
    for i in 1..hops {
        let relay = SecureNode::new(cfg.clone(), dns_pk.clone(), None, engine.rng());
        engine.add_node(
            Box::new(relay),
            Pos::new(180.0 * (i as f64 + 1.0), 0.0),
            Mobility::Static,
        );
    }
    let joiner = SecureNode::with_identity(cfg, joiner_ident, dns_pk, None, Behavior::default());
    let join_at = SimTime(2_000_000);
    let joiner_id = engine.add_node_at(
        Box::new(joiner),
        Pos::new(180.0 * (hops as f64 + 1.0), 0.0),
        Mobility::Static,
        join_at,
    );
    engine.run_until(SimTime(12_000_000));
    let j = engine.protocol_as::<SecureNode>(joiner_id);
    let detected = j.stats().collisions_detected > 0;
    let latency = j
        .stats()
        .joined_at
        .map(|t| t.since(join_at).as_secs_f64())
        .unwrap_or(f64::NAN);
    (detected, latency)
}

/// E1: duplicate detection probability and join latency vs hop distance
/// and channel loss. The paper's extended-DAD claim is that detection
/// works beyond one hop — link-local DAD by construction only covers
/// hop distance 1.
pub fn exhibit_e1(quick: bool) -> String {
    let seeds = seeds(quick);
    let hop_range: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 3, 4, 6]
    };
    let mut t = Table::new(
        "E1 — secure DAD: duplicate detection vs distance (extended DAD over relays)",
        &[
            "hops to owner",
            "loss",
            "detection rate",
            "mean join latency (s)",
        ],
    );
    for &hops in &hop_range {
        for &loss in &[0.0, 0.10] {
            let cells = runner::sweep(&[hops], &seeds, |&h, s| dad_duplicate_cell(h, s, loss));
            let results = &cells[0].1;
            let detected = results.iter().filter(|(d, _)| *d).count();
            let mean_lat: f64 = results.iter().map(|(_, l)| l).sum::<f64>() / results.len() as f64;
            t.rowv(vec![
                hops.to_string(),
                format!("{loss:.2}"),
                format!("{}/{}", detected, results.len()),
                format!("{mean_lat:.2}"),
            ]);
        }
    }
    t.note("link-local (RFC 2461) DAD would detect only the 1-hop rows; the AREQ flood covers all");
    t.note("a detected duplicate adds one extra DAD round (~1 window) to the join latency");
    t.render()
}

// ---------------------------------------------------------------------------
// E2 — route discovery: latency and control overhead vs hops, secure vs plain
// ---------------------------------------------------------------------------

struct E2Cell {
    discovery_ms: f64,
    ctl_bytes: u64,
    delivery: f64,
}

fn e2_secure(hops: usize, seed: u64) -> E2Cell {
    let mut net = ScenarioBuilder::new()
        .hosts(hops + 1)
        .seed(seed)
        .secure()
        .build();
    assert!(net.bootstrap());
    let base = net.engine.metrics().counter("ctl.routing_bytes");
    let report = net.run_flows(&[(0, hops)], 10, SimDuration::from_millis(300));
    let m = net.engine.metrics();
    E2Cell {
        discovery_ms: m.series("route.discovery_latency_s").mean() * 1e3,
        ctl_bytes: m.counter("ctl.routing_bytes") - base,
        delivery: report.delivery_or_nan(),
    }
}

fn e2_plain(hops: usize, seed: u64) -> E2Cell {
    let mut net = ScenarioBuilder::new()
        .hosts(hops + 1)
        .seed(seed)
        .plain()
        .build();
    let report = net.run_flows(&[(0, hops)], 10, SimDuration::from_millis(300));
    let m = net.engine.metrics();
    E2Cell {
        discovery_ms: m.series("route.discovery_latency_s").mean() * 1e3,
        ctl_bytes: m.counter("ctl.routing_bytes"),
        delivery: report.delivery_or_nan(),
    }
}

/// E2: discovery latency and control bytes for a 10-packet flow over a
/// chain, secure vs plain, by hop count.
pub fn exhibit_e2(quick: bool) -> String {
    let seeds = seeds(quick);
    let hop_range: Vec<usize> = if quick {
        vec![2, 4, 6]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7]
    };
    let mut t = Table::new(
        "E2 — route discovery vs hop count (10-packet flow on a chain)",
        &[
            "hops",
            "secure disc (ms)",
            "plain disc (ms)",
            "secure routing bytes",
            "plain routing bytes",
            "overhead ×",
            "secure delivery",
            "plain delivery",
        ],
    );
    for &hops in &hop_range {
        let sec = runner::sweep(&[hops], &seeds, |&h, s| e2_secure(h, s));
        let pla = runner::sweep(&[hops], &seeds, |&h, s| e2_plain(h, s));
        let avg = |cells: &[E2Cell], f: fn(&E2Cell) -> f64| {
            cells.iter().map(f).sum::<f64>() / cells.len() as f64
        };
        let s_cells = &sec[0].1;
        let p_cells = &pla[0].1;
        let s_bytes = avg(s_cells, |c| c.ctl_bytes as f64);
        let p_bytes = avg(p_cells, |c| c.ctl_bytes as f64);
        t.rowv(vec![
            hops.to_string(),
            format!("{:.1}", avg(s_cells, |c| c.discovery_ms)),
            format!("{:.1}", avg(p_cells, |c| c.discovery_ms)),
            format!("{s_bytes:.0}"),
            format!("{p_bytes:.0}"),
            format!("{:.1}", s_bytes / p_bytes),
            format!("{:.2}", avg(s_cells, |c| c.delivery)),
            format!("{:.2}", avg(p_cells, |c| c.delivery)),
        ]);
    }
    t.note("routing bytes: all control traffic (floods + replies + errors), data/acks excluded;");
    t.note("the secure side additionally excludes its bootstrap-phase traffic");
    t.note("expected shape: both latencies grow linearly in hops; the secure byte overhead grows");
    t.note("super-linearly (per-hop SRR proofs inside a flood) but delivery matches plain");
    t.render()
}

// ---------------------------------------------------------------------------
// E3 — the Section 4 attack matrix
// ---------------------------------------------------------------------------

struct AttackOutcome {
    delivery: f64,
    rejected: u64,
    stolen: u64,
}

fn e3_secure(attack: Option<Behavior>, seed: u64) -> AttackOutcome {
    let attackers = attack
        .map(|b| vec![(BYPASS_ATTACKER, b)])
        .unwrap_or_default();
    let mut net = bypass_secure(seed, attackers).build();
    assert!(net.bootstrap());
    let report = net.run_flows(&[(0, 2)], 20, SimDuration::from_millis(300));
    let m = net.engine.metrics();
    AttackOutcome {
        delivery: report.delivery_or_nan(),
        rejected: m.counter("sec.rrep_rejected")
            + m.counter("sec.rreq_rejected")
            + m.counter("sec.arep_rejected")
            + m.counter("sec.dns_reply_rejected"),
        stolen: net.host(BYPASS_ATTACKER).stats().data_received,
    }
}

fn e3_plain(attack: Option<Behavior>, seed: u64) -> AttackOutcome {
    let attackers = attack
        .map(|b| vec![(BYPASS_ATTACKER, b)])
        .unwrap_or_default();
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .placement(Placement::Bypass)
        .adversaries(attackers)
        .seed(seed)
        .plain()
        .build();
    let report = net.run_flows(&[(0, 2)], 20, SimDuration::from_millis(300));
    AttackOutcome {
        delivery: report.delivery_or_nan(),
        rejected: 0, // plain DSR verifies nothing
        stolen: net.host(BYPASS_ATTACKER).stats().data_received,
    }
}

/// E3: delivery under each Section 4 attack, plain vs secure, plus the
/// secure stack's detection counters.
pub fn exhibit_e3(quick: bool) -> String {
    let seeds = seeds(quick);
    // The victim address for impersonation must match the destination;
    // addresses are seed-dependent, so impersonation uses a probe build.
    let attacks_list: Vec<(&str, Option<Behavior>, Option<Behavior>)> = vec![
        ("none (baseline)", None, None),
        (
            "black hole (forge+drop)",
            Some(attacks::black_hole()),
            Some(attacks::black_hole()),
        ),
        (
            "quiet data dropper",
            Some(attacks::data_dropper()),
            Some(attacks::data_dropper()),
        ),
        (
            "grey hole (p=0.5)",
            Some(attacks::grey_hole(0.5)),
            Some(attacks::grey_hole(0.5)),
        ),
        ("replayer", Some(attacks::replayer()), None),
        ("RERR spammer", Some(attacks::rerr_forger()), None),
    ];

    let mut t = Table::new(
        "E3 — Section 4 attack matrix (bypass topology, 20-packet flow S→D through A)",
        &[
            "attack at A",
            "plain delivery",
            "secure delivery",
            "secure rejections",
            "stolen (plain)",
            "stolen (secure)",
        ],
    );
    for (name, secure_b, plain_b) in attacks_list {
        let sec: Vec<AttackOutcome> = seeds
            .iter()
            .map(|&s| e3_secure(secure_b.clone(), s))
            .collect();
        let pla: Vec<AttackOutcome> = plain_b
            .map(|b| {
                seeds
                    .iter()
                    .map(|&s| e3_plain(Some(b.clone()), s))
                    .collect()
            })
            .unwrap_or_else(|| seeds.iter().map(|&s| e3_plain(None, s)).collect());
        let mean = |v: &[AttackOutcome], f: fn(&AttackOutcome) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        t.rowv(vec![
            name.into(),
            format!("{:.2}", mean(&pla, |o| o.delivery)),
            format!("{:.2}", mean(&sec, |o| o.delivery)),
            format!("{:.0}", mean(&sec, |o| o.rejected as f64)),
            format!("{:.0}", mean(&pla, |o| o.stolen as f64)),
            format!("{:.0}", mean(&sec, |o| o.stolen as f64)),
        ]);
    }

    // Impersonation needs the victim's address up front.
    let mut imp_sec = Vec::new();
    let mut imp_pla = Vec::new();
    for &s in &seeds {
        let probe = bypass_secure(s, Vec::new()).build();
        let victim = probe.host_ip(2);
        drop(probe);
        imp_sec.push(e3_secure(Some(attacks::impersonator(victim)), s));

        let probe = ScenarioBuilder::new()
            .hosts(5)
            .placement(Placement::Bypass)
            .seed(s)
            .plain()
            .build();
        let victim = probe.host_ip(2);
        drop(probe);
        imp_pla.push(e3_plain(Some(attacks::impersonator(victim)), s));
    }
    let mean = |v: &[AttackOutcome], f: fn(&AttackOutcome) -> f64| {
        v.iter().map(f).sum::<f64>() / v.len() as f64
    };
    t.rowv(vec![
        "impersonation of D".into(),
        format!("{:.2}", mean(&imp_pla, |o| o.delivery)),
        format!("{:.2}", mean(&imp_sec, |o| o.delivery)),
        format!("{:.0}", mean(&imp_sec, |o| o.rejected as f64)),
        format!("{:.0}", mean(&imp_pla, |o| o.stolen as f64)),
        format!("{:.0}", mean(&imp_sec, |o| o.stolen as f64)),
    ]);
    t.note("'stolen' = data packets the attacker received as (claimed) destination");
    t.note("plain 'delivery' can be nonzero under impersonation: the attacker ACKs what it steals");
    t.note(
        "expected shape: plain collapses or leaks under every attack; secure sustains & detects",
    );
    t.render()
}

// ---------------------------------------------------------------------------
// E4 — credit management over time
// ---------------------------------------------------------------------------

/// E4: delivery per 5-packet bucket with a quiet dropper on the short
/// path, credits on vs off, plus the attacker's credit trajectory.
pub fn exhibit_e4(quick: bool) -> String {
    let buckets = if quick { 6 } else { 10 };
    let run = |credits_on: bool| -> (Vec<f64>, Vec<i64>, Vec<f64>) {
        let mut net = bypass_secure(4, vec![(BYPASS_ATTACKER, attacks::data_dropper())])
            .tune(|p| p.credit.enabled = credits_on)
            .build();
        assert!(net.bootstrap());
        let mut deliveries = Vec::new();
        let mut credits = Vec::new();
        let mut latencies = Vec::new();
        let atk_ip = net.host_ip(BYPASS_ATTACKER);
        let mut prev_acked = 0;
        let mut prev_samples = 0;
        for _ in 0..buckets {
            net.run_flows(&[(0, 2)], 5, SimDuration::from_millis(300));
            let acked = net.host(0).stats().data_acked;
            deliveries.push((acked - prev_acked) as f64 / 5.0);
            prev_acked = acked;
            credits.push(net.host(0).credits().credit(&atk_ip));
            let series = net.engine.metrics().series("app.e2e_latency_s");
            let new = &series.samples()[prev_samples..];
            latencies.push(if new.is_empty() {
                f64::NAN
            } else {
                new.iter().sum::<f64>() / new.len() as f64 * 1e3
            });
            prev_samples = series.len();
        }
        (deliveries, credits, latencies)
    };
    let (on_del, on_credit, on_lat) = run(true);
    let (off_del, _, _) = run(false);

    let mut t = Table::new(
        "E4 — credit management: delivery over time with a data dropper on the short path",
        &[
            "packet bucket",
            "delivery (credits ON)",
            "delivery (credits OFF)",
            "e2e latency ON (ms)",
            "dropper credit @S",
        ],
    );
    for i in 0..buckets {
        t.rowv(vec![
            format!("{}–{}", i * 5 + 1, (i + 1) * 5),
            format!("{:.2}", on_del[i]),
            format!("{:.2}", off_del[i]),
            format!("{:.0}", on_lat[i]),
            on_credit[i].to_string(),
        ]);
    }
    t.note("expected shape: credits-ON recovers via the detour once the dropper's score sinks;");
    t.note("the transient shows up as an early latency spike (retries), not lost packets;");
    t.note("credits-OFF keeps selecting the short, dead path and never recovers");
    t.render()
}

// ---------------------------------------------------------------------------
// E5 — bootstrap cost vs network size
// ---------------------------------------------------------------------------

fn e5_cell(n: usize, seed: u64) -> (bool, u64, u64, usize) {
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Grid {
            cols: 5,
            spacing: 170.0,
        })
        .seed(seed)
        .secure()
        .build();
    let ok = net.bootstrap();
    let m = net.engine.metrics();
    let committed = net
        .dns_node()
        .dns_state()
        .map(|d| d.name_count())
        .unwrap_or(0);
    (
        ok,
        m.counter("ctl.tx_msgs"),
        m.counter("ctl.tx_bytes"),
        committed,
    )
}

/// E5: whole-network cold-boot cost — "network formation is light-weight".
pub fn exhibit_e5(quick: bool) -> String {
    let seeds = seeds(quick);
    let sizes: Vec<usize> = if quick {
        vec![5, 10, 20]
    } else {
        vec![5, 10, 20, 40]
    };
    let mut t = Table::new(
        "E5 — bootstrap cost vs network size (grid, staggered joins)",
        &[
            "hosts",
            "all ready",
            "ctl msgs",
            "ctl bytes",
            "bytes / join",
            "names committed",
        ],
    );
    for &n in &sizes {
        let cells = runner::sweep(&[n], &seeds, |&n, s| e5_cell(n, s));
        let results = &cells[0].1;
        let all_ok = results.iter().all(|(ok, ..)| *ok);
        let msgs = results.iter().map(|(_, m, ..)| *m as f64).sum::<f64>() / results.len() as f64;
        let bytes =
            results.iter().map(|(_, _, b, _)| *b as f64).sum::<f64>() / results.len() as f64;
        let committed = results.iter().map(|(.., c)| *c as f64).sum::<f64>() / results.len() as f64;
        t.rowv(vec![
            n.to_string(),
            all_ok.to_string(),
            format!("{msgs:.0}"),
            format!("{bytes:.0}"),
            format!("{:.0}", bytes / n as f64),
            format!("{committed:.1}"),
        ]);
    }
    t.note("pre-configuration per node: the DNS public key only (the paper's claim (ii))");
    t.note("expected shape: cost grows ~linearly — one network-wide AREQ flood per join");
    t.render()
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

/// A1: per-hop SRR identity proofs — byte growth per hop and the
/// destination-side verification cost, vs verification disabled.
pub fn ablation_srr() -> String {
    // Static byte accounting straight from the codec.
    let ident = HostIdentity::generate(512, &mut ChaCha12Rng::seed_from_u64(9));
    let mut t = Table::new(
        "A1 — ablation: per-hop SRR proofs (RREQ size by hops traversed)",
        &[
            "hops",
            "secure RREQ bytes",
            "plain RREQ bytes",
            "bytes/hop added",
        ],
    );
    for hops in [0usize, 1, 2, 4, 8] {
        use manet_wire::*;
        let seq = Seq(1);
        let entries: Vec<SrrEntry> = (0..hops)
            .map(|_| SrrEntry {
                ip: ident.ip(),
                proof: IdentityProof {
                    pk: ident.public().clone(),
                    rn: ident.rn(),
                    sig: ident.sign(&sigdata::srr_hop(&ident.ip(), seq)),
                },
            })
            .collect();
        let secure = Message::Rreq(Rreq {
            sip: ident.ip(),
            dip: ident.ip(),
            seq,
            srr: SecureRouteRecord(entries),
            src_proof: IdentityProof {
                pk: ident.public().clone(),
                rn: ident.rn(),
                sig: ident.sign(&sigdata::rreq_src(&ident.ip(), seq)),
            },
        });
        let plain = Message::PlainRreq(PlainRreq {
            sip: ident.ip(),
            dip: ident.ip(),
            seq,
            rr: RouteRecord(vec![ident.ip(); hops]),
        });
        let per_hop = if hops > 0 {
            format!("{:.0}", (secure.wire_size() as f64 - 215.0) / hops as f64)
        } else {
            "—".into()
        };
        t.rowv(vec![
            hops.to_string(),
            secure.wire_size().to_string(),
            plain.wire_size().to_string(),
            per_hop,
        ]);
    }
    t.note("each hop adds one identity proof: ~64-byte signature + ~70-byte key + 8-byte rn");
    t.note("SRP-style source-only signing would keep the flood flat but lose per-hop identity —");
    t.note("the paper's tracking of misbehaving hosts (Section 3.4) depends on the proofs");
    t.render()
}

/// A2: CREP on/off — discovery latency for the second requester.
pub fn ablation_crep(quick: bool) -> String {
    let seeds = seeds(quick);
    let run = |crep: bool, seed: u64| -> f64 {
        let mut net = ScenarioBuilder::new()
            .hosts(6)
            .seed(seed)
            .secure()
            .tune(|p| p.crep_enabled = crep)
            .build();
        assert!(net.bootstrap());
        net.run_flows(&[(0, 5)], 2, SimDuration::from_millis(300));
        let before = net
            .engine
            .metrics()
            .series("route.discovery_latency_s")
            .len();
        net.run_flows(&[(1, 5)], 2, SimDuration::from_millis(300));
        let series = net.engine.metrics().series("route.discovery_latency_s");
        // The second requester's discovery is the sample after `before`.
        series.samples()[before..]
            .iter()
            .copied()
            .next()
            .unwrap_or(f64::NAN)
            * 1e3
    };
    let mut t = Table::new(
        "A2 — ablation: cached route replies (second requester's discovery latency)",
        &["CREP", "mean discovery (ms)"],
    );
    for &on in &[true, false] {
        let mean =
            runner::mean_over_seeds(&seeds, |s| run(on, s)).expect("at least one seed per cell");
        t.rowv(vec![
            if on { "enabled" } else { "disabled" }.into(),
            format!("{mean:.1}"),
        ]);
    }
    t.note("with CREP the neighbor's cache answers in ~1 hop; without, the flood runs to D");
    t.render()
}

/// A3: credit slash magnitude on the RERR-spam scenario — the slash is
/// what turns an *identified* misbehaver (frequency threshold crossed)
/// into an avoided one (credit below the floor).
pub fn ablation_credit(quick: bool) -> String {
    let seeds = seeds(quick);
    let run = |slash: i64, seed: u64| -> (f64, bool) {
        let mut net = bypass_secure(seed, vec![(BYPASS_ATTACKER, attacks::rerr_forger())])
            .tune(|p| p.credit.slash = slash)
            .build();
        assert!(net.bootstrap());
        let report = net.run_flows(&[(0, 2)], 25, SimDuration::from_millis(300));
        let atk_ip = net.host_ip(BYPASS_ATTACKER);
        let identified = net.host(0).credits().hostile_hosts().contains(&atk_ip);
        (report.delivery_or_nan(), identified)
    };
    let mut t = Table::new(
        "A3 — ablation: credit slash magnitude (RERR spammer on the short path)",
        &["slash", "delivery", "spammer marked hostile"],
    );
    for &slash in &[2i64, 10, 100, 1000] {
        let cells: Vec<(f64, bool)> = seeds.iter().map(|&s| run(slash, s)).collect();
        let del = cells.iter().map(|(d, _)| d).sum::<f64>() / cells.len() as f64;
        let marked = cells.iter().filter(|(_, m)| *m).count();
        t.rowv(vec![
            slash.to_string(),
            format!("{del:.2}"),
            format!("{}/{}", marked, cells.len()),
        ]);
    }
    t.note("too-small slashes never push the spammer below the avoidance floor (-10):");
    t.note("its reports stay believed forever; a large slash isolates it after the");
    t.note("frequency threshold (3 reports) — Section 3.4's 'very large amount'");
    t.render()
}

/// A5: route probing (Section 3.4's integrity test) on/off, against a
/// naive and a probe-evading data dropper.
pub fn ablation_probe(quick: bool) -> String {
    let seeds = seeds(quick);
    let run = |probe: bool, evade: bool, seed: u64| -> (f64, i64, bool, u64) {
        let mut attacker = attacks::data_dropper();
        attacker.evade_probes = evade;
        let mut net = bypass_secure(seed, vec![(BYPASS_ATTACKER, attacker)])
            .tune(|p| p.probe_enabled = probe)
            .build();
        assert!(net.bootstrap());
        let report = net.run_flows(&[(0, 2)], 15, SimDuration::from_millis(300));
        let atk_ip = net.host_ip(BYPASS_ATTACKER);
        let h0 = net.host(0);
        let false_accusations = h0
            .stats()
            .probe_suspects
            .iter()
            .filter(|s| **s != atk_ip)
            .count() as u64;
        (
            report.delivery_or_nan(),
            h0.credits().credit(&atk_ip),
            h0.credits().hostile_hosts().contains(&atk_ip),
            false_accusations,
        )
    };
    let mut t = Table::new(
        "A5 — ablation: route probing vs a dropper on the short path",
        &[
            "probing",
            "dropper type",
            "delivery",
            "dropper credit @S",
            "marked hostile",
            "false accusations",
        ],
    );
    for &(probe, evade, label) in &[
        (false, false, "naive"),
        (true, false, "naive"),
        (true, true, "probe-evading"),
    ] {
        let cells: Vec<_> = seeds.iter().map(|&s| run(probe, evade, s)).collect();
        let del = cells.iter().map(|c| c.0).sum::<f64>() / cells.len() as f64;
        let credit = cells.iter().map(|c| c.1).sum::<i64>() / cells.len() as i64;
        let hostile = cells.iter().filter(|c| c.2).count();
        let false_acc: u64 = cells.iter().map(|c| c.3).sum();
        t.rowv(vec![
            if probe { "on" } else { "off" }.into(),
            label.into(),
            format!("{del:.2}"),
            credit.to_string(),
            format!("{}/{}", hostile, cells.len()),
            false_acc.to_string(),
        ]);
    }
    t.note("probing localizes the naive dropper on the first lost packet (slash → hostile);");
    t.note("an evader answers every probe (inconclusive) and the credit fallback handles it;");
    t.note("honest relays are never accused (false accusations = 0)");
    t.render()
}

/// A4: RSA key size — signing/verification wall time and proof bytes.
pub fn ablation_keysize() -> String {
    let mut t = Table::new(
        "A4 — ablation: RSA modulus size (host-side costs)",
        &[
            "bits",
            "keygen (ms)",
            "sign (µs)",
            "verify (µs)",
            "proof bytes",
        ],
    );
    for &bits in &[512u32, 768, 1024] {
        let mut rng = ChaCha12Rng::seed_from_u64(bits as u64);
        let t0 = std::time::Instant::now();
        let kp = KeyPair::generate(bits, &mut rng);
        let keygen_ms = t0.elapsed().as_secs_f64() * 1e3;
        let msg = b"[IIP, seq]ISK";
        let t1 = std::time::Instant::now();
        let iters = 20;
        let mut sig = kp.sign(msg);
        for _ in 1..iters {
            sig = kp.sign(msg);
        }
        let sign_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let t2 = std::time::Instant::now();
        for _ in 0..iters {
            kp.public().verify(msg, &sig).expect("valid");
        }
        let verify_us = t2.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let proof_bytes = sig.to_bytes().len() + kp.public().to_bytes().len() + 8;
        t.rowv(vec![
            bits.to_string(),
            format!("{keygen_ms:.1}"),
            format!("{sign_us:.0}"),
            format!("{verify_us:.0}"),
            proof_bytes.to_string(),
        ]);
    }
    t.note("protocol correctness is key-size independent; cost scales ~cubically in bits");
    t.note("every RREQ relay pays one sign; every verifying destination pays hops+1 verifies");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_secure::scenario::host_name;
    use manet_sim::Field;
    use manet_wire::DomainName;

    #[test]
    fn e1_detects_at_multiple_hops() {
        let s = exhibit_e1(true);
        assert!(s.contains("E1"));
        // Every zero-loss row should show full detection.
        for line in s.lines().filter(|l| l.contains("0.00")) {
            assert!(
                line.contains("3/3"),
                "zero-loss detection must be 3/3: {line}"
            );
        }
    }

    #[test]
    fn e3_baseline_row_is_healthy() {
        let s = exhibit_e3(true);
        let baseline = s.lines().find(|l| l.contains("none (baseline)")).unwrap();
        // Both stacks deliver ≥ 0.9 in the clean case.
        let nums: Vec<f64> = baseline
            .split_whitespace()
            .filter_map(|w| w.parse::<f64>().ok())
            .collect();
        assert!(nums.iter().take(2).all(|&x| x > 0.9), "{baseline}");
    }

    #[test]
    fn e4_credits_on_beats_off_in_late_buckets() {
        let s = exhibit_e4(true);
        assert!(s.contains("E4"));
        // The last bucket row: credits-on delivery ≥ credits-off.
        let last = s.lines().rfind(|l| l.contains("–")).expect("bucket rows");
        let nums: Vec<f64> = last
            .split_whitespace()
            .filter_map(|w| w.parse::<f64>().ok())
            .collect();
        assert!(nums.len() >= 2, "{last}");
        assert!(
            nums[0] >= nums[1],
            "credits-on ≥ credits-off in the end: {last}"
        );
    }

    #[test]
    fn a1_grows_linearly() {
        let s = ablation_srr();
        assert!(s.contains("A1"));
        assert!(s.contains("8"));
    }

    #[test]
    fn a4_reports_three_sizes() {
        let s = ablation_keysize();
        for bits in ["512", "768", "1024"] {
            assert!(s.contains(bits));
        }
    }

    #[test]
    fn field_type_is_used() {
        // Keep the import honest (scenario fields are Field-typed).
        let f = Field::new(1.0, 1.0);
        assert!(f.contains(&Pos::new(0.5, 0.5)));
        let _ = DomainName::new("x.y");
        let _ = host_name(0);
    }
}
