//! V1 — the verify-pipeline exhibit: a secure-node flood workload run
//! twice, with the signature-verdict cache on and off.
//!
//! The workload concentrates RREQ floods: a dense uniform network
//! (expected degree ~8) where several sources discover routes to shared
//! hub destinations under a flood-stress config (`rrep_multi = 6`, so a
//! destination answers up to six copies of each flood), with a
//! signed-RERR spammer in the population. Every repeated
//! `(key, payload, signature)` triple — the shared SRR prefix across
//! flood copies, the re-presented source proof, the spammer's identical
//! RERR payload — is exactly what `manet_crypto::VerifyCache` memoizes.
//!
//! The two runs double as the pipeline's differential gate: verification
//! verdicts are pure, so the cached and uncached universes must agree on
//! every observable (events, bytes, delivery) and on the total
//! verification demand. The exhibit panics if they do not, or if the
//! cache hit rate on this workload drops to half or below.
//!
//! Results land in `BENCH_crypto.json` (next to `BENCH_scale.json`),
//! including a re-timed quick S1 grid run so the scale trajectory shows
//! the node-stack refactor did not tax the hot path.

use crate::jsonscan::{extract_object, read_bool, read_number};
use crate::table::Table;
use manet_secure::scenario::{Placement, RunReport, ScenarioBuilder, Workload};
use manet_secure::{attacks, ProtocolConfig};
use manet_sim::SimDuration;
use std::time::Instant;

/// Observables of one V1 run: the boot wall plus the flows-phase
/// [`RunReport`] (whose `wall_s` covers the traffic only, so exec/s
/// rates are not diluted by RSA key generation).
struct V1Run {
    wall_boot_s: f64,
    report: RunReport,
}

impl V1Run {
    fn demand(&self) -> u64 {
        self.report.crypto.demand()
    }
}

/// The flood workload: `n` hosts at expected radio degree ~8, sources
/// fanning in on two hub destinations plus background pair flows.
fn run_v1(cache: bool, quick: bool, seed: u64) -> V1Run {
    let n = if quick { 24 } else { 36 };
    let (packets, rounds_ms) = if quick { (6, 300) } else { (10, 300) };
    let hub_a = n / 2;
    let hub_b = n - 2;
    let mut flows: Vec<(usize, usize)> = (0..6).map(|s| (s, hub_a)).collect();
    flows.extend((7..11).map(|s| (s, hub_b)));
    flows.push((11, 12));
    flows.push((13, 14));

    let t0 = Instant::now();
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .density(8.0)
        .seed(seed)
        .adversary(6, attacks::rerr_forger())
        .secure_with(ProtocolConfig {
            rrep_multi: 6,
            verify_cache: cache,
            ..ProtocolConfig::default()
        })
        .build();
    net.bootstrap();
    let wall_boot_s = t0.elapsed().as_secs_f64();
    let report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(rounds_ms),
    ));
    V1Run {
        wall_boot_s,
        report,
    }
}

/// V1: secure flood workload, verify cache on vs off.
pub fn exhibit_v1(quick: bool) -> String {
    let seed = 1;
    let on = run_v1(true, quick, seed);
    let off = run_v1(false, quick, seed);

    // Differential gate: memoizing a pure function must not move a
    // single event, byte, or verdict.
    assert_eq!(
        (
            on.report.events,
            on.report.tx_bytes,
            on.report.crypto.failed
        ),
        (
            off.report.events,
            off.report.tx_bytes,
            off.report.crypto.failed
        ),
        "cached and uncached universes diverged — verify cache is not pure"
    );
    assert_eq!(
        on.demand(),
        off.demand(),
        "verification demand changed with the cache — pipeline accounting broken"
    );
    let hit_rate = on.report.crypto.cached as f64 / on.demand().max(1) as f64;
    assert!(
        hit_rate > 0.5,
        "verify-cache hit rate {hit_rate:.3} fell to 1/2 or below on the flood workload"
    );

    // Re-time the S1 hot path: the refactor moved the whole node stack,
    // so pin its cost next to the crypto numbers. Compare only against a
    // recorded run of the same workload size — a full-mode BENCH_scale
    // number against a quick re-run would fake a speedup.
    let prev_s1 = read_prev_s1_grid_wall(quick);
    let s1_wall_s = crate::scale_exhibits::s1_grid_wall(quick);

    let mut t = Table::new(
        format!(
            "V1 — verify pipeline: secure flood workload ({} mode), cache on vs off",
            if quick { "quick" } else { "full" }
        ),
        &[
            "verify cache",
            "RSA executed",
            "served cached",
            "hit rate",
            "flows wall (s)",
            "exec/s",
            "delivery",
        ],
    );
    for (name, r) in [("on", &on), ("off", &off)] {
        let crypto = r.report.crypto;
        let rate = crypto.cached as f64 / r.demand().max(1) as f64;
        t.rowv(vec![
            name.to_string(),
            crypto.executed.to_string(),
            crypto.cached.to_string(),
            format!("{rate:.3}"),
            format!("{:.3}", r.report.wall_s),
            format!("{:.0}", crypto.executed as f64 / r.report.wall_s.max(1e-9)),
            format!("{:.3}", r.report.delivery_or_nan()),
        ]);
    }
    t.note(format!(
        "identical universes with cache on/off (differential gate); demand {} checks, {} rejected",
        on.demand(),
        on.report.crypto.failed
    ));
    t.note(format!(
        "S1 grid ({}) re-timed at {s1_wall_s:.3}s{}",
        if quick { "quick" } else { "full" },
        match prev_s1 {
            Some(prev) => format!(
                " vs {prev:.3}s recorded in BENCH_scale.json (Δ {:+.3}s)",
                s1_wall_s - prev
            ),
            None => " (no same-mode BENCH_scale.json record to compare against)".to_string(),
        }
    ));

    if let Err(e) = write_crypto_json(quick, &on, &off, hit_rate, s1_wall_s, prev_s1) {
        t.note(format!("BENCH_crypto.json not written: {e}"));
    } else {
        t.note(format!("wrote {}", crypto_json_path()));
    }
    t.render()
}

fn crypto_json_path() -> String {
    std::env::var("BENCH_CRYPTO_JSON").unwrap_or_else(|_| "BENCH_crypto.json".to_string())
}

/// Pull `"grid": {"wall_s": X` out of an existing BENCH_scale.json, if
/// one is lying around (same naive formatting we write it with; no JSON
/// dependency in the workspace). The recorded run must have the same
/// `quick` mode as ours — quick and full S1 are different workloads and
/// their walls must not be compared.
fn read_prev_s1_grid_wall(quick: bool) -> Option<f64> {
    let path = std::env::var("BENCH_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    read_prev_s1_grid_wall_from(&path, quick)
}

fn read_prev_s1_grid_wall_from(path: &str, quick: bool) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    if read_bool(&text, "quick")? != quick {
        return None;
    }
    // The file's first "grid" object is S1's (the section writer keeps
    // s1 ahead of s2).
    read_number(&extract_object(&text, "grid")?, "wall_s")
}

fn write_crypto_json(
    quick: bool,
    on: &V1Run,
    off: &V1Run,
    hit_rate: f64,
    s1_wall_s: f64,
    prev_s1: Option<f64>,
) -> std::io::Result<()> {
    // Each side serializes its flows-phase RunReport verbatim, plus the
    // V1-specific extras (boot wall, per-second crypto rates).
    let run_json = |r: &V1Run| {
        format!(
            concat!(
                "{{\"wall_boot_s\": {:.3}, ",
                "\"executed_per_sec\": {:.0}, \"demand_per_sec\": {:.0}, ",
                "\"report\": {}}}"
            ),
            r.wall_boot_s,
            r.report.crypto.executed as f64 / r.report.wall_s.max(1e-9),
            r.demand() as f64 / r.report.wall_s.max(1e-9),
            r.report.to_json(),
        )
    };
    let (prev, delta) = match prev_s1 {
        Some(p) => (format!("{p:.3}"), format!("{:+.3}", s1_wall_s - p)),
        None => ("null".to_string(), "null".to_string()),
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"exhibit\": \"v1\",\n",
            "  \"quick\": {},\n",
            "  \"verify_demand\": {},\n",
            "  \"cache_hit_rate\": {:.4},\n",
            "  \"cached\": {},\n",
            "  \"cache_on\": {},\n",
            "  \"cache_off\": {},\n",
            "  \"s1_grid_wall_s\": {:.3},\n",
            "  \"s1_grid_wall_prev_s\": {},\n",
            "  \"s1_grid_wall_delta_s\": {}\n",
            "}}\n"
        ),
        quick,
        on.demand(),
        hit_rate,
        on.report.crypto.cached,
        run_json(on),
        run_json(off),
        s1_wall_s,
        prev,
        delta,
    );
    std::fs::write(crypto_json_path(), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full V1 is exercised by the exhibit smoke test; here the
    /// workload-shape invariants.
    #[test]
    fn quick_flood_workload_hits_cache_hard() {
        let run = run_v1(true, true, 1);
        assert!(run.demand() > 50, "workload too small: {}", run.demand());
        assert!(
            run.report.crypto.cached * 2 > run.demand(),
            "hit rate {}/{} at or below 1/2",
            run.report.crypto.cached,
            run.demand()
        );
        assert!(
            run.report.delivery_or_nan() > 0.8,
            "flood workload must still deliver"
        );
    }

    #[test]
    fn uncached_run_reports_zero_cached() {
        let run = run_v1(false, true, 1);
        assert_eq!(run.report.crypto.cached, 0);
        assert!(run.report.crypto.executed > 50);
    }

    #[test]
    fn prev_s1_parser_reads_our_own_format() {
        let dir = std::env::temp_dir().join("v1_parser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scale.json");
        std::fs::write(
            &path,
            "{\n  \"quick\": true,\n  \"grid\": {\"wall_s\": 0.638, \"events\": 1},\n  \"linear\": {\"wall_s\": 0.886}\n}\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();
        assert_eq!(read_prev_s1_grid_wall_from(path, true), Some(0.638));
        assert_eq!(
            read_prev_s1_grid_wall_from(path, false),
            None,
            "a quick-mode record must not anchor a full-mode comparison"
        );
        assert_eq!(
            read_prev_s1_grid_wall_from("/nonexistent/nope.json", true),
            None
        );
    }
}
