//! V1 — the verify-pipeline exhibit: a secure-node flood workload run
//! twice, with the signature-verdict cache on and off.
//!
//! The workload concentrates RREQ floods: a dense uniform network
//! (expected degree ~8) where several sources discover routes to shared
//! hub destinations under a flood-stress config (`rrep_multi = 6`, so a
//! destination answers up to six copies of each flood), with a
//! signed-RERR spammer in the population. Every repeated
//! `(key, payload, signature)` triple — the shared SRR prefix across
//! flood copies, the re-presented source proof, the spammer's identical
//! RERR payload — is exactly what `manet_crypto::VerifyCache` memoizes.
//!
//! The two runs double as the pipeline's differential gate: verification
//! verdicts are pure, so the cached and uncached universes must agree on
//! every observable (events, bytes, delivery) and on the total
//! verification demand. The exhibit panics if they do not, or if the
//! cache hit rate on this workload drops to half or below.
//!
//! Results land in `BENCH_crypto.json` (next to `BENCH_scale.json`),
//! including a re-timed quick S1 grid run so the scale trajectory shows
//! the node-stack refactor did not tax the hot path.

use crate::jsonscan::{extract_object, read_bool, read_number};
use crate::table::Table;
use manet_crypto::BackendKind;
use manet_secure::scenario::{Placement, RunReport, ScenarioBuilder, Workload};
use manet_secure::{attacks, ProtocolConfig};
use manet_sim::SimDuration;
use std::time::Instant;

/// Observables of one V1 run: the boot wall plus the flows-phase
/// [`RunReport`] (whose `wall_s` covers the traffic only, so exec/s
/// rates are not diluted by RSA key generation), and the
/// benchmark-only backend/batch execution counters.
struct V1Run {
    wall_boot_s: f64,
    report: RunReport,
    backend_verifies: u64,
    backend_signs: u64,
    batch_requests: u64,
    batch_executed: u64,
}

impl V1Run {
    fn demand(&self) -> u64 {
        self.report.crypto.demand()
    }

    /// Backend ops saved per op executed by the network-wide drain.
    fn amortization(&self) -> f64 {
        self.batch_requests as f64 / self.batch_executed.max(1) as f64
    }
}

/// The flood workload under an explicit protocol config: `n` hosts at
/// expected radio degree ~8, sources fanning in on two hub destinations
/// plus background pair flows.
fn run_v1_cfg(cfg: ProtocolConfig, quick: bool, seed: u64) -> V1Run {
    let n = if quick { 24 } else { 36 };
    let (packets, rounds_ms) = if quick { (6, 300) } else { (10, 300) };
    let hub_a = n / 2;
    let hub_b = n - 2;
    let mut flows: Vec<(usize, usize)> = (0..6).map(|s| (s, hub_a)).collect();
    flows.extend((7..11).map(|s| (s, hub_b)));
    flows.push((11, 12));
    flows.push((13, 14));

    let t0 = Instant::now();
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .density(8.0)
        .seed(seed)
        .adversary(6, attacks::rerr_forger())
        .secure_with(cfg)
        .build();
    net.bootstrap();
    let wall_boot_s = t0.elapsed().as_secs_f64();
    let report = net.run(&Workload::flows(
        flows,
        packets,
        SimDuration::from_millis(rounds_ms),
    ));
    let (bv, bs) = net
        .crypto_backend
        .as_ref()
        .map(|b| (b.verifies_executed(), b.signs_executed()))
        .unwrap_or((0, 0));
    let stats = net.batch.as_ref().map(|b| b.stats()).unwrap_or_default();
    V1Run {
        wall_boot_s,
        report,
        backend_verifies: bv,
        backend_signs: bs,
        batch_requests: stats.requests,
        batch_executed: stats.executed,
    }
}

/// The cache-differential pair: verify cache on vs off under the
/// default (RSA) backend.
fn run_v1(cache: bool, quick: bool, seed: u64) -> V1Run {
    run_v1_cfg(
        ProtocolConfig {
            rrep_multi: 6,
            verify_cache: cache,
            ..ProtocolConfig::default()
        },
        quick,
        seed,
    )
}

/// The same flood under an explicit signature backend, batch drain on —
/// the per-backend throughput rows of `BENCH_crypto.json`.
fn run_v1_backend(kind: BackendKind, quick: bool, seed: u64) -> V1Run {
    run_v1_cfg(
        ProtocolConfig {
            rrep_multi: 6,
            crypto_backend: kind,
            batch_verify: true,
            ..ProtocolConfig::default()
        },
        quick,
        seed,
    )
}

/// V1: secure flood workload, verify cache on vs off.
pub fn exhibit_v1(quick: bool) -> String {
    let seed = 1;
    let on = run_v1(true, quick, seed);
    let off = run_v1(false, quick, seed);

    // Differential gate: memoizing a pure function must not move a
    // single event, byte, or verdict.
    assert_eq!(
        (
            on.report.events,
            on.report.tx_bytes,
            on.report.crypto.failed
        ),
        (
            off.report.events,
            off.report.tx_bytes,
            off.report.crypto.failed
        ),
        "cached and uncached universes diverged — verify cache is not pure"
    );
    assert_eq!(
        on.demand(),
        off.demand(),
        "verification demand changed with the cache — pipeline accounting broken"
    );
    let hit_rate = on.report.crypto.cached as f64 / on.demand().max(1) as f64;
    assert!(
        hit_rate > 0.5,
        "verify-cache hit rate {hit_rate:.3} fell to 1/2 or below on the flood workload"
    );

    // Per-backend throughput: the same flood under each signature
    // scheme, batch drain on. Each backend is its own universe (its
    // signature bytes differ), so the rows compare cost, never
    // observables. The drain must amortize under every backend — more
    // triples requested than backend ops executed — or batching is
    // pure overhead.
    let backends: Vec<(BackendKind, V1Run)> = BackendKind::ALL
        .iter()
        .map(|&k| (k, run_v1_backend(k, quick, seed)))
        .collect();
    for (kind, r) in &backends {
        assert!(
            r.batch_executed > 0 && r.batch_executed < r.batch_requests,
            "{}: batch never amortized ({} executed of {} requested)",
            kind.name(),
            r.batch_executed,
            r.batch_requests
        );
    }
    let rate_of = |want: BackendKind| {
        backends
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, r)| r.report.events_per_sec_engine)
            .expect("backend row")
    };
    let null_over_rsa = rate_of(BackendKind::Null) / rate_of(BackendKind::Rsa).max(1e-9);

    // Re-time the S1 hot path: the refactor moved the whole node stack,
    // so pin its cost next to the crypto numbers. Compare only against a
    // recorded run of the same workload size — a full-mode BENCH_scale
    // number against a quick re-run would fake a speedup.
    let prev_s1 = read_prev_s1_grid_wall(quick);
    let s1_wall_s = crate::scale_exhibits::s1_grid_wall(quick);

    let mut t = Table::new(
        format!(
            "V1 — verify pipeline: secure flood workload ({} mode), cache on vs off",
            if quick { "quick" } else { "full" }
        ),
        &[
            "verify cache",
            "RSA executed",
            "served cached",
            "hit rate",
            "flows wall (s)",
            "exec/s",
            "delivery",
        ],
    );
    for (name, r) in [("on", &on), ("off", &off)] {
        let crypto = r.report.crypto;
        let rate = crypto.cached as f64 / r.demand().max(1) as f64;
        t.rowv(vec![
            name.to_string(),
            crypto.executed.to_string(),
            crypto.cached.to_string(),
            format!("{rate:.3}"),
            format!("{:.3}", r.report.wall_s),
            format!("{:.0}", crypto.executed as f64 / r.report.wall_s.max(1e-9)),
            format!("{:.3}", r.report.delivery_or_nan()),
        ]);
    }
    t.note(format!(
        "identical universes with cache on/off (differential gate); demand {} checks, {} rejected",
        on.demand(),
        on.report.crypto.failed
    ));

    let mut bt = Table::new(
        "V1 — crypto backends: same flood per scheme, batch drain on".to_string(),
        &[
            "backend",
            "boot (s)",
            "flows wall (s)",
            "engine ev/s",
            "verifies run",
            "signs run",
            "batch req",
            "batch exec",
            "amortize",
        ],
    );
    for (kind, r) in &backends {
        bt.rowv(vec![
            kind.name().to_string(),
            format!("{:.3}", r.wall_boot_s),
            format!("{:.3}", r.report.wall_s),
            format!("{:.0}", r.report.events_per_sec_engine),
            r.backend_verifies.to_string(),
            r.backend_signs.to_string(),
            r.batch_requests.to_string(),
            r.batch_executed.to_string(),
            format!("{:.2}x", r.amortization()),
        ]);
    }
    bt.note(format!(
        "null runs the engine {null_over_rsa:.1}x faster than rsa on this workload — the crypto \
         budget batching and caching are chasing"
    ));
    t.note(format!(
        "S1 grid ({}) re-timed at {s1_wall_s:.3}s{}",
        if quick { "quick" } else { "full" },
        match prev_s1 {
            Some(prev) => format!(
                " vs {prev:.3}s recorded in BENCH_scale.json (Δ {:+.3}s)",
                s1_wall_s - prev
            ),
            None => " (no same-mode BENCH_scale.json record to compare against)".to_string(),
        }
    ));

    if let Err(e) = write_crypto_json(
        quick,
        &on,
        &off,
        hit_rate,
        &backends,
        null_over_rsa,
        s1_wall_s,
        prev_s1,
    ) {
        bt.note(format!("BENCH_crypto.json not written: {e}"));
    } else {
        bt.note(format!("wrote {}", crypto_json_path()));
    }
    format!("{}\n{}", t.render(), bt.render())
}

fn crypto_json_path() -> String {
    std::env::var("BENCH_CRYPTO_JSON").unwrap_or_else(|_| "BENCH_crypto.json".to_string())
}

/// Pull the grid-cell wall out of an existing BENCH_scale.json's
/// **`s1` section** (same naive formatting we write it with; no JSON
/// dependency in the workspace). The recorded run must have the same
/// `quick` mode as ours — quick and full S1 are different workloads and
/// their walls must not be compared.
fn read_prev_s1_grid_wall(quick: bool) -> Option<f64> {
    let path = std::env::var("BENCH_SCALE_JSON").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    read_prev_s1_grid_wall_from(&path, quick)
}

fn read_prev_s1_grid_wall_from(path: &str, quick: bool) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    if read_bool(&text, "quick")? != quick {
        return None;
    }
    // Scope the lookup to the s1 section: another section carrying a
    // "grid" object (or sections serialized in a different order) must
    // never masquerade as S1's record.
    let s1 = extract_object(&text, "s1")?;
    read_number(&extract_object(&s1, "grid")?, "wall_s")
}

#[allow(clippy::too_many_arguments)]
fn write_crypto_json(
    quick: bool,
    on: &V1Run,
    off: &V1Run,
    hit_rate: f64,
    backends: &[(BackendKind, V1Run)],
    null_over_rsa: f64,
    s1_wall_s: f64,
    prev_s1: Option<f64>,
) -> std::io::Result<()> {
    // Each side serializes its flows-phase RunReport verbatim, plus the
    // V1-specific extras (boot wall, per-second crypto rates).
    let run_json = |r: &V1Run| {
        format!(
            concat!(
                "{{\"wall_boot_s\": {:.3}, ",
                "\"executed_per_sec\": {:.0}, \"demand_per_sec\": {:.0}, ",
                "\"report\": {}}}"
            ),
            r.wall_boot_s,
            r.report.crypto.executed as f64 / r.report.wall_s.max(1e-9),
            r.demand() as f64 / r.report.wall_s.max(1e-9),
            r.report.to_json(),
        )
    };
    let (prev, delta) = match prev_s1 {
        Some(p) => (format!("{p:.3}"), format!("{:+.3}", s1_wall_s - p)),
        None => ("null".to_string(), "null".to_string()),
    };
    // One entry per signature backend: engine throughput, the backend's
    // actual execution counters, and how hard the batch drain amortized.
    let backends_json = backends
        .iter()
        .map(|(kind, r)| {
            format!(
                concat!(
                    "    \"{}\": {{\"events_per_sec_engine\": {:.0}, ",
                    "\"wall_boot_s\": {:.3}, \"flows_wall_s\": {:.3}, ",
                    "\"verifies_executed\": {}, \"signs_executed\": {}, ",
                    "\"batch\": {{\"requests\": {}, \"executed\": {}, ",
                    "\"amortization_ratio\": {:.3}}}}}"
                ),
                kind.name(),
                r.report.events_per_sec_engine,
                r.wall_boot_s,
                r.report.wall_s,
                r.backend_verifies,
                r.backend_signs,
                r.batch_requests,
                r.batch_executed,
                r.amortization(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"exhibit\": \"v1\",\n",
            "  \"quick\": {},\n",
            "  \"verify_demand\": {},\n",
            "  \"cache_hit_rate\": {:.4},\n",
            "  \"cached\": {},\n",
            "  \"cache_on\": {},\n",
            "  \"cache_off\": {},\n",
            "  \"backends\": {{\n{}\n  }},\n",
            "  \"null_over_rsa_engine_rate\": {:.3},\n",
            "  \"s1_grid_wall_s\": {:.3},\n",
            "  \"s1_grid_wall_prev_s\": {},\n",
            "  \"s1_grid_wall_delta_s\": {}\n",
            "}}\n"
        ),
        quick,
        on.demand(),
        hit_rate,
        on.report.crypto.cached,
        run_json(on),
        run_json(off),
        backends_json,
        null_over_rsa,
        s1_wall_s,
        prev,
        delta,
    );
    std::fs::write(crypto_json_path(), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full V1 is exercised by the exhibit smoke test; here the
    /// workload-shape invariants.
    #[test]
    fn quick_flood_workload_hits_cache_hard() {
        let run = run_v1(true, true, 1);
        assert!(run.demand() > 50, "workload too small: {}", run.demand());
        assert!(
            run.report.crypto.cached * 2 > run.demand(),
            "hit rate {}/{} at or below 1/2",
            run.report.crypto.cached,
            run.demand()
        );
        assert!(
            run.report.delivery_or_nan() > 0.8,
            "flood workload must still deliver"
        );
    }

    /// The per-backend rows must be non-vacuous: the drain amortizes
    /// (fewer backend ops than triples requested), and every drained
    /// execution shows up in the backend's own counter.
    #[test]
    fn backend_rows_amortize_on_the_flood() {
        let run = run_v1_backend(BackendKind::Null, true, 1);
        assert!(run.batch_executed > 0, "drain never executed");
        assert!(
            run.batch_executed < run.batch_requests,
            "no dedup: {} executed of {} requested",
            run.batch_executed,
            run.batch_requests
        );
        assert!(
            run.backend_verifies >= run.batch_executed,
            "drain executions missing from the backend counter"
        );
        assert!(run.backend_signs > 0, "flood produced no signing work");
    }

    #[test]
    fn uncached_run_reports_zero_cached() {
        let run = run_v1(false, true, 1);
        assert_eq!(run.report.crypto.cached, 0);
        assert!(run.report.crypto.executed > 50);
    }

    #[test]
    fn prev_s1_parser_reads_the_structured_sections() {
        let dir = std::env::temp_dir().join("v1_parser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scale.json");
        // Sections deliberately serialized s2-first, with a decoy
        // "grid" object inside s2: the reader must reach into the s1
        // section, not grab the file's first "grid".
        std::fs::write(
            &path,
            concat!(
                "{\n  \"quick\": true,\n",
                "  \"s2\": {\"n_hosts\": 10000, \"grid\": {\"wall_s\": 9.999}},\n",
                "  \"s1\": {\"grid\": {\"wall_s\": 0.638, \"events\": 1}, \"linear\": {\"wall_s\": 0.886}}\n}\n",
            ),
        )
        .unwrap();
        let path = path.to_str().unwrap();
        assert_eq!(read_prev_s1_grid_wall_from(path, true), Some(0.638));
        assert_eq!(
            read_prev_s1_grid_wall_from(path, false),
            None,
            "a quick-mode record must not anchor a full-mode comparison"
        );
        assert_eq!(
            read_prev_s1_grid_wall_from("/nonexistent/nope.json", true),
            None
        );
        // A file with no s1 section (e.g. only S2/S3 ran) yields None
        // instead of a wrong anchor.
        let no_s1 = dir.join("no_s1.json");
        std::fs::write(
            &no_s1,
            "{\n  \"quick\": true,\n  \"s2\": {\"grid\": {\"wall_s\": 9.9}}\n}\n",
        )
        .unwrap();
        assert_eq!(
            read_prev_s1_grid_wall_from(no_s1.to_str().unwrap(), true),
            None
        );
    }
}
