//! Quick wall-clock calibration of the crypto substrate — the numbers
//! that set the protocol's per-hop costs (one sign per RREQ relay,
//! hops+1 verifies at the destination).
//!
//! ```sh
//! cargo run --release -p manet-crypto --example speed
//! ```
//!
//! For statistically careful numbers use the Criterion benches:
//! `cargo bench -p manet-bench --bench crypto`.

use manet_crypto::{sha256, KeyPair};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
    println!(
        "{:>6} {:>14} {:>12} {:>12}",
        "bits", "keygen (ms)", "sign (µs)", "verify (µs)"
    );
    for bits in [512u32, 768, 1024, 2048] {
        let t0 = Instant::now();
        let kp = KeyPair::generate(bits, &mut rng);
        let keygen_ms = t0.elapsed().as_secs_f64() * 1e3;

        let msg = b"[IIP, seq]ISK - one SRR hop entry";
        let iters = 50u32;
        let t1 = Instant::now();
        let mut sig = kp.sign(msg);
        for _ in 1..iters {
            sig = kp.sign(msg);
        }
        let sign_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let t2 = Instant::now();
        for _ in 0..iters {
            kp.public().verify(msg, &sig).expect("valid signature");
        }
        let verify_us = t2.elapsed().as_secs_f64() * 1e6 / iters as f64;

        println!("{bits:>6} {keygen_ms:>14.1} {sign_us:>12.0} {verify_us:>12.0}");
    }

    // SHA-256 throughput (the CGA hash H and every digest-before-sign).
    let data = vec![0xabu8; 1 << 20];
    let t = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        let _ = sha256(&data);
    }
    let secs = t.elapsed().as_secs_f64();
    println!("\nsha256: {:.0} MiB/s", reps as f64 / secs);
}
