//! Pluggable signature backends.
//!
//! The paper's protocol logic is agnostic to *which* signature scheme
//! carries its proofs — it only needs `sign` and `verify` with the usual
//! semantics. Splitting that behind a trait (the `src/crypto/{native,
//! dalek}` pattern from dsf-core) lets one scenario run the real RSA
//! pipeline while another swaps in a constant-true stub to measure the
//! protocol stack with crypto cost removed, or a hash-based toy scheme
//! that is cheap but still rejects corrupted and spliced material.
//!
//! Every backend produces [`Signature`] values the wire format already
//! carries, so no envelope or trace plumbing changes per backend — but
//! the *bytes* differ between backends, meaning each backend defines its
//! own simulation universe. Differential gates must therefore compare
//! runs within one backend, never across two.
//!
//! Backends count the sign/verify executions they actually perform
//! (relaxed atomics, reported only in benchmark JSON — never in run
//! fingerprints), which is what makes the batch-verification
//! amortization ratio measurable.

use crate::rsa::{KeyPair, PublicKey, Signature};
use crate::sha256::sha256;
use crate::uint::Ubig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Selector for a [`CryptoBackend`] implementation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BackendKind {
    /// The real RSA path in `rsa.rs` — the oracle all other backends'
    /// scenarios are sanity-checked against.
    Rsa,
    /// Constant-true verification (format checks only). Every
    /// well-formed signature verifies, including forgeries: use only
    /// for protocol-logic/performance runs, never for security claims.
    Null,
    /// Keyless hash "signature": `sha256(domain ‖ pk ‖ msg)`. Rejects
    /// corrupted or spliced material but is forgeable by anyone who can
    /// hash — a stand-in for a fast scheme, not a secure one.
    HashSig,
}

impl BackendKind {
    /// Stable lower-case name (used in env vars, JSON, and bench IDs).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Rsa => "rsa",
            BackendKind::Null => "null",
            BackendKind::HashSig => "hashsig",
        }
    }

    /// Parse a [`Self::name`] string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rsa" => Some(BackendKind::Rsa),
            "null" => Some(BackendKind::Null),
            "hashsig" => Some(BackendKind::HashSig),
            _ => None,
        }
    }

    /// All backends, for matrix tests and benches.
    pub const ALL: [BackendKind; 3] = [BackendKind::Rsa, BackendKind::Null, BackendKind::HashSig];
}

impl Default for BackendKind {
    /// [`BackendKind::Rsa`], overridable by the `MANET_CRYPTO`
    /// environment variable (`rsa` | `null` | `hashsig`) — the CI knob
    /// that reruns the suite under a different backend, mirroring how
    /// `MANET_EXEC` selects the executor. Read once and cached: a
    /// mid-run env change cannot make two halves of one simulation
    /// disagree.
    fn default() -> Self {
        static KIND: OnceLock<BackendKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("MANET_CRYPTO") {
            Ok(v) => BackendKind::parse(&v)
                .unwrap_or_else(|| panic!("MANET_CRYPTO must be rsa|null|hashsig, got {v:?}")),
            Err(_) => BackendKind::Rsa,
        })
    }
}

/// A signature scheme the simulator can run its proofs over.
///
/// Implementations are shared (`Arc`) across every node of a scenario,
/// so they must be `Send + Sync` and keep their counters atomic.
pub trait CryptoBackend: Send + Sync {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// Produce the signature `[msg]XSK` for the paper's notation.
    fn sign(&self, kp: &KeyPair, msg: &[u8]) -> Signature;

    /// Check `sig` over `msg` under `pk`.
    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool;

    /// Verify executions actually performed (not memoized or batched
    /// away). Benchmark-only: never feeds a run fingerprint.
    fn verifies_executed(&self) -> u64;

    /// Sign executions performed.
    fn signs_executed(&self) -> u64;
}

/// A fresh backend instance of the given kind with zeroed counters.
///
/// Each scenario gets its own instance so per-run execution counts are
/// meaningful; sharing happens via the returned `Arc`.
pub fn backend_for(kind: BackendKind) -> Arc<dyn CryptoBackend> {
    match kind {
        BackendKind::Rsa => Arc::new(RsaBackend::default()),
        BackendKind::Null => Arc::new(NullBackend::default()),
        BackendKind::HashSig => Arc::new(HashSigBackend::default()),
    }
}

/// The real RSA pipeline (EMSA frame, Montgomery modpow, CRT signing).
#[derive(Default)]
pub struct RsaBackend {
    verifies: AtomicU64,
    signs: AtomicU64,
}

impl CryptoBackend for RsaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Rsa
    }

    fn sign(&self, kp: &KeyPair, msg: &[u8]) -> Signature {
        self.signs.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
        kp.sign(msg)
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        self.verifies.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
        pk.verify(msg, sig).is_ok()
    }

    fn verifies_executed(&self) -> u64 {
        self.verifies.load(Ordering::Relaxed) // Relaxed: bench-only counter read
    }

    fn signs_executed(&self) -> u64 {
        self.signs.load(Ordering::Relaxed) // Relaxed: bench-only counter read
    }
}

/// Constant-true verification: only the structural check (signature
/// reduced modulo `n`) can fail. Signing emits a digest-derived integer
/// so traces stay deterministic and wire sizes realistic-ish.
#[derive(Default)]
pub struct NullBackend {
    verifies: AtomicU64,
    signs: AtomicU64,
}

impl CryptoBackend for NullBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Null
    }

    fn sign(&self, kp: &KeyPair, msg: &[u8]) -> Signature {
        self.signs.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
                                                    // Reduced modulo n so the range format-check always passes for
                                                    // honestly produced signatures.
        let digest = Ubig::from_be_bytes(&sha256(msg));
        Signature(digest.div_rem(kp.public().modulus()).1)
    }

    fn verify(&self, pk: &PublicKey, _msg: &[u8], sig: &Signature) -> bool {
        self.verifies.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
                                                       // Format check only: in-range under the key's modulus.
        sig.0 < *pk.modulus()
    }

    fn verifies_executed(&self) -> u64 {
        self.verifies.load(Ordering::Relaxed) // Relaxed: bench-only counter read
    }

    fn signs_executed(&self) -> u64 {
        self.signs.load(Ordering::Relaxed) // Relaxed: bench-only counter read
    }
}

/// Domain-separation tag for [`HashSigBackend`] material.
const HASHSIG_DOMAIN: &[u8] = b"manet-hashsig-v1";

/// Keyless hash scheme: `sig = sha256(domain ‖ pk_bytes ‖ msg) mod n`.
///
/// Binds the signature to both the key and the message, so corruption
/// and key-splicing are detected — but anyone can forge (there is no
/// secret), so it models a *fast* scheme, not a secure one.
#[derive(Default)]
pub struct HashSigBackend {
    verifies: AtomicU64,
    signs: AtomicU64,
}

impl HashSigBackend {
    fn material(pk: &PublicKey, msg: &[u8]) -> Ubig {
        let pk_bytes = pk.to_bytes();
        let mut buf = Vec::with_capacity(HASHSIG_DOMAIN.len() + pk_bytes.len() + msg.len());
        buf.extend_from_slice(HASHSIG_DOMAIN);
        buf.extend_from_slice(&pk_bytes);
        buf.extend_from_slice(msg);
        Ubig::from_be_bytes(&sha256(&buf)).div_rem(pk.modulus()).1
    }
}

impl CryptoBackend for HashSigBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::HashSig
    }

    fn sign(&self, kp: &KeyPair, msg: &[u8]) -> Signature {
        self.signs.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
        Signature(Self::material(kp.public(), msg))
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        self.verifies.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
        sig.0 == Self::material(pk, msg)
    }

    fn verifies_executed(&self) -> u64 {
        self.verifies.load(Ordering::Relaxed) // Relaxed: bench-only counter read
    }

    fn signs_executed(&self) -> u64 {
        self.signs.load(Ordering::Relaxed) // Relaxed: bench-only counter read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn keypair(seed: u64) -> KeyPair {
        KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(seed))
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("ed25519"), None);
    }

    #[test]
    fn every_backend_roundtrips_own_signatures() {
        let kp = keypair(1);
        for kind in BackendKind::ALL {
            let backend = backend_for(kind);
            let sig = backend.sign(&kp, b"route request");
            assert!(
                backend.verify(kp.public(), b"route request", &sig),
                "{} rejects its own signature",
                kind.name()
            );
            assert_eq!(backend.kind(), kind);
            assert_eq!(
                (backend.signs_executed(), backend.verifies_executed()),
                (1, 1)
            );
        }
    }

    #[test]
    fn rsa_backend_matches_raw_rsa() {
        let kp = keypair(2);
        let backend = backend_for(BackendKind::Rsa);
        let sig = backend.sign(&kp, b"msg");
        assert_eq!(sig, kp.sign(b"msg"));
        assert!(kp.public().verify(b"msg", &sig).is_ok());
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 1;
        assert!(!backend.verify(kp.public(), b"msg", &Signature::from_bytes(&bytes)));
    }

    #[test]
    fn null_backend_accepts_forgeries_but_checks_range() {
        let kp = keypair(3);
        let backend = backend_for(BackendKind::Null);
        // A forged signature over a message never signed: accepted.
        let forged = Signature(Ubig::from(12345u64));
        assert!(backend.verify(kp.public(), b"never signed", &forged));
        // Out-of-range material still fails the format check.
        let oversized = Signature(kp.public().modulus() + &Ubig::one());
        assert!(!backend.verify(kp.public(), b"x", &oversized));
    }

    #[test]
    fn hashsig_rejects_corruption_and_splicing() {
        let kp = keypair(4);
        let other = keypair(5);
        let backend = backend_for(BackendKind::HashSig);
        let sig = backend.sign(&kp, b"payload");
        assert!(backend.verify(kp.public(), b"payload", &sig));
        // Corrupted message, corrupted signature, wrong key: all rejected.
        assert!(!backend.verify(kp.public(), b"payloae", &sig));
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 1;
        assert!(!backend.verify(kp.public(), b"payload", &Signature::from_bytes(&bytes)));
        assert!(!backend.verify(other.public(), b"payload", &sig));
        // But it is forgeable: verification is a pure recompute.
        let forged = Signature(HashSigBackend::material(kp.public(), b"forged"));
        assert!(backend.verify(kp.public(), b"forged", &forged));
    }

    #[test]
    fn signatures_differ_across_backends() {
        // Each backend is its own universe: same (key, msg), different
        // wire bytes.
        let kp = keypair(6);
        let rsa = backend_for(BackendKind::Rsa).sign(&kp, b"m");
        let null = backend_for(BackendKind::Null).sign(&kp, b"m");
        let hash = backend_for(BackendKind::HashSig).sign(&kp, b"m");
        assert_ne!(rsa, null);
        assert_ne!(rsa, hash);
        assert_ne!(null, hash);
    }

    #[test]
    fn counters_track_executions() {
        let kp = keypair(7);
        let backend = backend_for(BackendKind::HashSig);
        let sig = backend.sign(&kp, b"a");
        for _ in 0..3 {
            backend.verify(kp.public(), b"a", &sig);
        }
        assert_eq!(backend.signs_executed(), 1);
        assert_eq!(backend.verifies_executed(), 3);
    }
}
