//! Arbitrary-precision unsigned integers.
//!
//! [`Ubig`] stores little-endian `u64` limbs with the invariant that the
//! highest limb is non-zero (so zero is the empty limb vector). All
//! arithmetic needed by the RSA layer lives here: ring operations,
//! Karatsuba multiplication, Knuth Algorithm-D division, and shifts.

use crate::limb::{self, LIMB_BITS};
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};

/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs; no trailing (most-significant) zero limbs.
    limbs: Vec<u64>,
}

impl Ubig {
    /// The value 0.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Construct from raw little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Ubig { limbs }
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the lowest bit is clear (0 counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|w| w & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u32 - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Value of bit `i` (false beyond the top).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / LIMB_BITS) as usize;
        match self.limbs.get(limb) {
            None => false,
            Some(w) => (w >> (i % LIMB_BITS)) & 1 == 1,
        }
    }

    /// Set bit `i`, growing as needed.
    pub fn set_bit(&mut self, i: u32) {
        let limb = (i / LIMB_BITS) as usize;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % LIMB_BITS);
    }

    /// Lowest limb as `u64` (0 for zero). Truncating.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Exact conversion to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Parse from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut w = 0u64;
            for &b in chunk {
                w = (w << 8) | b as u64;
            }
            limbs.push(w);
        }
        Self::from_limbs(limbs)
    }

    /// Serialize to minimal big-endian bytes (empty for 0).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, w) in self.limbs.iter().enumerate().rev() {
            let bytes = w.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // skip leading zeros of the top limb
                let skip = (w.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, requested {}",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        // Left-pad to an even number of nibbles, then go through bytes.
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let first = s.len() % 2;
        if first == 1 {
            bytes.push(hex_val(s[0]));
        }
        for pair in s[first..].chunks(2) {
            bytes.push((hex_val(pair[0]) << 4) | hex_val(pair[1]));
        }
        Some(Self::from_be_bytes(&bytes))
    }

    /// Lowercase hexadecimal rendering without prefix ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, w) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{w:x}"));
            } else {
                s.push_str(&format!("{w:016x}"));
            }
        }
        s
    }

    /// `self * self`, via dedicated squaring (~half the limb products of
    /// a general multiplication; Karatsuba splitting above the threshold).
    pub fn square(&self) -> Ubig {
        Ubig::from_limbs(Self::sqr_impl(&self.limbs))
    }

    fn sqr_impl(a: &[u64]) -> Vec<u64> {
        if a.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; 2 * a.len()];
        if a.len() < KARATSUBA_THRESHOLD {
            limb::sqr_schoolbook(&mut out, a);
            return out;
        }
        // Karatsuba squaring: (a1·B + a0)² = a1²·B² + 2·a0·a1·B + a0²,
        // computed as z1 = (a0+a1)² − a0² − a1² to stay in squarings.
        let split = a.len() / 2;
        let (a0, a1) = a.split_at(split);
        let z0 = Self::sqr_impl(a0);
        let z2 = Self::sqr_impl(a1);
        let mut a_sum = vec![0u64; a0.len().max(a1.len()) + 1];
        a_sum[..a0.len()].copy_from_slice(a0);
        limb::add_assign(&mut a_sum, a1);
        while a_sum.last() == Some(&0) {
            a_sum.pop();
        }
        let mut z1 = Self::sqr_impl(&a_sum);
        let bz = limb::sub_assign(&mut z1, &z0);
        debug_assert_eq!(bz, 0);
        let bz = limb::sub_assign(&mut z1, &z2);
        debug_assert_eq!(bz, 0);
        out[..z0.len()].copy_from_slice(&z0);
        limb::add_assign(&mut out[split..], &z1);
        limb::add_assign(&mut out[2 * split..], &z2);
        out
    }

    /// `(self / rhs, self % rhs)`.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, rhs: &Ubig) -> (Ubig, Ubig) {
        assert!(!rhs.is_zero(), "division by zero");
        match self.cmp(rhs) {
            Ordering::Less => return (Ubig::zero(), self.clone()),
            Ordering::Equal => return (Ubig::one(), Ubig::zero()),
            Ordering::Greater => {}
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(rhs.limbs[0]);
            return (q, Ubig::from(r));
        }
        self.div_rem_knuth(rhs)
    }

    /// Divide by a single limb, returning `(quotient, remainder)`.
    pub fn div_rem_limb(&self, d: u64) -> (Ubig, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for (i, &w) in self.limbs.iter().enumerate().rev() {
            let cur = ((rem as u128) << LIMB_BITS) | w as u128;
            q[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        (Ubig::from_limbs(q), rem)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for divisors of ≥ 2 limbs.
    fn div_rem_knuth(&self, rhs: &Ubig) -> (Ubig, Ubig) {
        let n = rhs.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the divisor's top bit is set.
        let shift = rhs.limbs[n - 1].leading_zeros();
        let mut v = rhs.limbs.clone();
        limb::shl_small(&mut v, shift);
        let mut u = self.limbs.clone();
        u.push(0);
        let spill = limb::shl_small(&mut u, shift);
        debug_assert_eq!(spill, 0);

        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_next = v[n - 2];

        // D2..D7: main loop over quotient digits.
        for j in (0..=m).rev() {
            // D3: estimate q̂ from the top two dividend limbs.
            let num = ((u[j + n] as u128) << LIMB_BITS) | u[j + n - 1] as u128;
            let mut q_hat = num / v_top as u128;
            let mut r_hat = num % v_top as u128;
            // Refine: at most two corrections bring q̂ within 1 of q.
            while q_hat >> LIMB_BITS != 0
                || q_hat * v_next as u128 > ((r_hat << LIMB_BITS) | u[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
                if r_hat >> LIMB_BITS != 0 {
                    break;
                }
            }
            let mut q_hat = q_hat as u64;

            // D4: u[j..j+n+1] -= q̂ * v
            let mut borrow = 0u64;
            let mut carry = 0u64;
            for i in 0..n {
                let (lo, hi) = limb::mac(v[i], q_hat, 0, carry);
                carry = hi;
                let (d, b) = limb::sbb(u[j + i], lo, borrow);
                u[j + i] = d;
                borrow = b;
            }
            let (d, b) = limb::sbb(u[j + n], carry, borrow);
            u[j + n] = d;

            // D5/D6: q̂ was one too large (probability ~2/2^64): add back.
            if b != 0 {
                q_hat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s, c) = limb::adc(u[j + i], v[i], carry);
                    u[j + i] = s;
                    carry = c;
                }
                u[j + n] = u[j + n].wrapping_add(carry);
            }
            q[j] = q_hat;
        }

        // D8: denormalize the remainder.
        u.truncate(n);
        limb::shr_small(&mut u, shift);
        (Ubig::from_limbs(q), Ubig::from_limbs(u))
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a >> a_tz;
        b = b >> b_tz;
        loop {
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b -= &a;
            if b.is_zero() {
                return a << common;
            }
            b = b.clone() >> b.trailing_zeros();
        }
    }

    /// Number of trailing zero bits (0 for the value 0).
    pub fn trailing_zeros(&self) -> u32 {
        for (i, &w) in self.limbs.iter().enumerate() {
            if w != 0 {
                return i as u32 * LIMB_BITS + w.trailing_zeros();
            }
        }
        0
    }

    /// Karatsuba-or-schoolbook product into a fresh value.
    fn mul_impl(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            limb::mul_schoolbook(&mut out, a, b);
        } else {
            Self::mul_karatsuba(&mut out, a, b);
        }
        out
    }

    /// Karatsuba multiplication: `out = a*b`, `out` zeroed on entry.
    fn mul_karatsuba(out: &mut [u64], a: &[u64], b: &[u64]) {
        let split = a.len().max(b.len()) / 2;
        if a.len() <= split || b.len() <= split {
            // Unbalanced: fall back to schoolbook on this level.
            limb::mul_schoolbook(out, a, b);
            return;
        }
        let (a0, a1) = a.split_at(split);
        let (b0, b1) = b.split_at(split);

        // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2
        let z0 = Self::mul_impl(a0, b0);
        let z2 = Self::mul_impl(a1, b1);

        let mut a_sum = vec![0u64; a0.len().max(a1.len()) + 1];
        a_sum[..a0.len()].copy_from_slice(a0);
        limb::add_assign(&mut a_sum, a1);
        let mut b_sum = vec![0u64; b0.len().max(b1.len()) + 1];
        b_sum[..b0.len()].copy_from_slice(b0);
        limb::add_assign(&mut b_sum, b1);
        while a_sum.last() == Some(&0) {
            a_sum.pop();
        }
        while b_sum.last() == Some(&0) {
            b_sum.pop();
        }
        let mut z1 = Self::mul_impl(&a_sum, &b_sum);
        // z1 -= z0 + z2 (never underflows by construction)
        let bz = limb::sub_assign(&mut z1, &z0);
        debug_assert_eq!(bz, 0);
        let bz = limb::sub_assign(&mut z1, &z2);
        debug_assert_eq!(bz, 0);

        // out = z0 + z1 << (64*split) + z2 << (64*2*split)
        out[..z0.len()].copy_from_slice(&z0);
        limb::add_assign(&mut out[split..], &z1);
        limb::add_assign(&mut out[2 * split..], &z2);
    }
}

fn hex_val(b: u8) -> u8 {
    match b {
        b'0'..=b'9' => b - b'0',
        b'a'..=b'f' => b - b'a' + 10,
        b'A'..=b'F' => b - b'A' + 10,
        _ => unreachable!("validated hexdigit"),
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => limb::cmp_same_len(&self.limbs, &other.limbs),
            other => other,
        }
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let carry = limb::add_assign(&mut self.limbs, &rhs.limbs);
        if carry != 0 {
            self.limbs.push(carry);
        }
    }
}

impl Add<&Ubig> for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl Add for Ubig {
    type Output = Ubig;
    fn add(mut self, rhs: Ubig) -> Ubig {
        self += &rhs;
        self
    }
}

impl SubAssign<&Ubig> for Ubig {
    /// # Panics
    /// Panics on underflow (`self < rhs`).
    fn sub_assign(&mut self, rhs: &Ubig) {
        assert!(self.limbs.len() >= rhs.limbs.len(), "Ubig underflow");
        let borrow = limb::sub_assign(&mut self.limbs, &rhs.limbs);
        assert_eq!(borrow, 0, "Ubig underflow");
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl Sub<&Ubig> for &Ubig {
    type Output = Ubig;
    fn sub(self, rhs: &Ubig) -> Ubig {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl Sub for Ubig {
    type Output = Ubig;
    fn sub(mut self, rhs: Ubig) -> Ubig {
        self -= &rhs;
        self
    }
}

impl Mul<&Ubig> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        Ubig::from_limbs(Ubig::mul_impl(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Ubig {
    type Output = Ubig;
    fn mul(self, rhs: Ubig) -> Ubig {
        &self * &rhs
    }
}

impl Mul<u64> for &Ubig {
    type Output = Ubig;
    #[allow(clippy::suspicious_arithmetic_impl)] // `+ 1` sizes the carry limb
    fn mul(self, rhs: u64) -> Ubig {
        let mut out = vec![0u64; self.limbs.len() + 1];
        let carry = limb::add_mul_limb(&mut out[..self.limbs.len()], &self.limbs, rhs);
        let n = self.limbs.len();
        out[n] = carry;
        Ubig::from_limbs(out)
    }
}

impl Div<&Ubig> for &Ubig {
    type Output = Ubig;
    fn div(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).0
    }
}

impl Rem<&Ubig> for &Ubig {
    type Output = Ubig;
    fn rem(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).1
    }
}

impl Shl<u32> for Ubig {
    type Output = Ubig;
    fn shl(self, sh: u32) -> Ubig {
        if self.is_zero() {
            return self;
        }
        let limb_sh = (sh / LIMB_BITS) as usize;
        let bit_sh = sh % LIMB_BITS;
        let mut limbs = vec![0u64; limb_sh];
        limbs.extend_from_slice(&self.limbs);
        let spill = limb::shl_small(&mut limbs[limb_sh..], bit_sh);
        if spill != 0 {
            limbs.push(spill);
        }
        Ubig::from_limbs(limbs)
    }
}

impl Shr<u32> for Ubig {
    type Output = Ubig;
    fn shr(self, sh: u32) -> Ubig {
        let limb_sh = (sh / LIMB_BITS) as usize;
        if limb_sh >= self.limbs.len() {
            return Ubig::zero();
        }
        let mut limbs = self.limbs[limb_sh..].to_vec();
        limb::shr_small(&mut limbs, sh % LIMB_BITS);
        Ubig::from_limbs(limbs)
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig(0x{})", self.to_hex())
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert_eq!(&u(5) + &Ubig::zero(), u(5));
        assert_eq!(&u(5) * &Ubig::one(), u(5));
        assert_eq!(&u(5) * &Ubig::zero(), Ubig::zero());
    }

    #[test]
    fn from_u128_roundtrips() {
        let v = Ubig::from(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128);
        assert_eq!(v.to_hex(), "123456789abcdeffedcba9876543210");
    }

    #[test]
    fn bytes_roundtrip() {
        let v = Ubig::from_hex("deadbeef0badf00d1234").unwrap();
        assert_eq!(Ubig::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(v.to_be_bytes_padded(16).len(), 16);
        assert_eq!(
            Ubig::from_be_bytes(&v.to_be_bytes_padded(16)),
            v,
            "padding must not change the value"
        );
    }

    #[test]
    fn hex_parse_rejects_garbage() {
        assert!(Ubig::from_hex("").is_none());
        assert!(Ubig::from_hex("xyz").is_none());
        assert_eq!(Ubig::from_hex("0").unwrap(), Ubig::zero());
        assert_eq!(Ubig::from_hex("fF").unwrap(), u(255));
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = Ubig::from(u64::MAX);
        let b = u(1);
        assert_eq!((&a + &b).to_hex(), "10000000000000000");
    }

    #[test]
    fn subtraction_inverse_of_addition() {
        let a = Ubig::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = Ubig::from_hex("0123456789abcdef").unwrap();
        let s = &a + &b;
        assert_eq!(&s - &b, a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = &u(1) - &u(2);
    }

    #[test]
    fn multiplication_matches_u128() {
        let a = 0x1234_5678_9abc_def0u64;
        let b = 0xfedc_ba98_7654_3210u64;
        let expect = Ubig::from(a as u128 * b as u128);
        assert_eq!(&u(a) * &u(b), expect);
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Build operands big enough to trip the Karatsuba path.
        let mut a_limbs = Vec::new();
        let mut b_limbs = Vec::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..(KARATSUBA_THRESHOLD * 3) {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            a_limbs.push(x);
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            b_limbs.push(x);
        }
        let a = Ubig::from_limbs(a_limbs.clone());
        let b = Ubig::from_limbs(b_limbs.clone());
        let mut school = vec![0u64; a_limbs.len() + b_limbs.len()];
        limb::mul_schoolbook(&mut school, &a_limbs, &b_limbs);
        assert_eq!(&a * &b, Ubig::from_limbs(school));
    }

    #[test]
    fn square_matches_mul_small() {
        for v in [0u64, 1, 2, 0xffff_ffff, u64::MAX] {
            let x = u(v);
            assert_eq!(x.square(), &x * &x, "v={v}");
        }
    }

    #[test]
    fn square_matches_mul_multi_limb_and_karatsuba() {
        let mut limbs = Vec::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..(KARATSUBA_THRESHOLD * 2 + 3) {
            x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xb7e1);
            limbs.push(x);
        }
        // Check across sizes spanning the schoolbook/Karatsuba switch.
        for n in [
            1usize,
            3,
            KARATSUBA_THRESHOLD - 1,
            KARATSUBA_THRESHOLD,
            KARATSUBA_THRESHOLD * 2 + 3,
        ] {
            let v = Ubig::from_limbs(limbs[..n].to_vec());
            assert_eq!(v.square(), &v * &v, "n={n}");
        }
    }

    #[test]
    fn div_rem_identity_small() {
        let a = Ubig::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let b = Ubig::from_hex("fedc").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_identity_multi_limb_divisor() {
        let a = Ubig::from_hex(
            "aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55aa55deadbeef",
        )
        .unwrap();
        let b = Ubig::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_edge_cases() {
        let a = u(100);
        assert_eq!(a.div_rem(&u(100)), (Ubig::one(), Ubig::zero()));
        assert_eq!(a.div_rem(&u(101)), (Ubig::zero(), u(100)));
        assert_eq!(Ubig::zero().div_rem(&u(7)), (Ubig::zero(), Ubig::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(&Ubig::zero());
    }

    #[test]
    fn knuth_d6_addback_case() {
        // Crafted so the q̂ estimate overshoots and the add-back branch runs:
        // classic worst case with divisor just above a power of two.
        let a = Ubig::from_hex("800000000000000000000000000000000000000000000000").unwrap();
        let b = Ubig::from_hex("800000000000000000000000000000001").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn shifts_roundtrip() {
        let v = Ubig::from_hex("deadbeef0badf00d").unwrap();
        assert_eq!((v.clone() << 100) >> 100, v);
        assert_eq!(v.clone() >> 200, Ubig::zero());
        assert_eq!((v.clone() << 64).limbs()[0], 0);
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(Ubig::zero().bit_len(), 0);
        assert_eq!(u(1).bit_len(), 1);
        assert_eq!(u(0xff).bit_len(), 8);
        assert_eq!((Ubig::one() << 64).bit_len(), 65);
        let mut v = Ubig::zero();
        v.set_bit(130);
        assert!(v.bit(130));
        assert!(!v.bit(129));
        assert_eq!(v.bit_len(), 131);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(u(12).gcd(&u(18)), u(6));
        assert_eq!(u(17).gcd(&u(13)), u(1));
        assert_eq!(u(0).gcd(&u(5)), u(5));
        assert_eq!(u(5).gcd(&u(0)), u(5));
        let a = Ubig::from_hex("100000000000000000000000").unwrap();
        let b = Ubig::from_hex("10000000000").unwrap();
        assert_eq!(a.gcd(&b), b);
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(u(2) > u(1));
        assert!(Ubig::from(u64::MAX) < (Ubig::one() << 64));
        assert_eq!(u(7).cmp(&u(7)), Ordering::Equal);
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(u(8).trailing_zeros(), 3);
        assert_eq!((Ubig::one() << 64).trailing_zeros(), 64);
        assert_eq!(Ubig::zero().trailing_zeros(), 0);
    }
}
