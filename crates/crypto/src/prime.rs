//! Probabilistic primality testing and random prime generation.
//!
//! Miller–Rabin with a small-prime pre-sieve. Prime generation is the
//! dominant cost of RSA key generation; the sieve rejects ~80% of odd
//! candidates before any modular exponentiation runs.

use crate::modular::MontgomeryCtx;
use crate::uint::Ubig;
use rand::Rng;

/// Primes below 1000, used for trial-division sieving.
const SMALL_PRIMES: [u64; 168] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Miller–Rabin rounds for a <2^-80 error bound on random candidates.
const MR_ROUNDS: usize = 40;

/// Probabilistic primality test.
///
/// Deterministically correct for all `n < 3,317,044,064,679,887,385,961,981`
/// when the first 13 prime bases are used; for larger `n` the error
/// probability is ≤ 4^-rounds per composite.
pub fn is_prime<R: Rng>(n: &Ubig, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = Ubig::from(p);
        if *n == pb {
            return true;
        }
        if n.div_rem_limb(p).1 == 0 {
            return false;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3.
fn miller_rabin<R: Rng>(n: &Ubig, rounds: usize, rng: &mut R) -> bool {
    debug_assert!(!n.is_even());
    let one = Ubig::one();
    let n_minus_1 = n - &one;
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.clone() >> s;
    let ctx = MontgomeryCtx::new(n);

    'witness: for _ in 0..rounds {
        // base in [2, n-2]
        let a = random_below(&n_minus_1, rng);
        if a < Ubig::from(2u64) {
            continue;
        }
        let mut x = ctx.modpow(&a, &d);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.modpow(&x, &Ubig::from(2u64));
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random value in `[0, bound)`.
///
/// Rejection sampling over the minimal bit width, so the distribution is
/// exactly uniform.
pub fn random_below<R: Rng>(bound: &Ubig, rng: &mut R) -> Ubig {
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bit_len();
    loop {
        let candidate = random_bits(bits, rng);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Uniform random value with at most `bits` bits.
pub fn random_bits<R: Rng>(bits: u32, rng: &mut R) -> Ubig {
    if bits == 0 {
        return Ubig::zero();
    }
    let limbs = bits.div_ceil(64) as usize;
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let extra = (limbs as u32) * 64 - bits;
    if extra > 0 {
        let last = limbs - 1;
        v[last] &= u64::MAX >> extra;
    }
    Ubig::from_limbs(v)
}

/// Generate a random prime of exactly `bits` bits (top two bits set so RSA
/// moduli built from two such primes have exactly `2*bits` bits).
///
/// # Panics
/// Panics if `bits < 16`: such tiny primes make no sense for the RSA layer
/// and break the "top two bits" construction.
pub fn gen_prime<R: Rng>(bits: u32, rng: &mut R) -> Ubig {
    assert!(bits >= 16, "prime size too small: {bits} bits");
    loop {
        let mut candidate = random_bits(bits, rng);
        candidate.set_bit(bits - 1);
        candidate.set_bit(bits - 2);
        if candidate.is_even() {
            candidate += &Ubig::one();
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(0x5eed)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 541, 7919] {
            assert!(is_prime(&Ubig::from(p), &mut r), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 100, 561, 1001, 7917] {
            assert!(!is_prime(&Ubig::from(c), &mut r), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes to many bases; Miller-Rabin must catch them.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&Ubig::from(c), &mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut r = rng();
        // 2^61 - 1 (Mersenne prime)
        let m61 = (Ubig::one() << 61) - Ubig::one();
        assert!(is_prime(&m61, &mut r));
        // 2^89 - 1 (Mersenne prime, multi-limb)
        let m89 = (Ubig::one() << 89) - Ubig::one();
        assert!(is_prime(&m89, &mut r));
        // 2^67 - 1 = 193707721 × 761838257287 (famously composite)
        let m67 = (Ubig::one() << 67) - Ubig::one();
        assert!(!is_prime(&m67, &mut r));
    }

    #[test]
    fn gen_prime_has_exact_bit_length_and_is_odd() {
        let mut r = rng();
        for bits in [64u32, 96, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit set");
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn random_below_is_in_range() {
        let mut r = rng();
        let bound = Ubig::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&bound, &mut r) < bound);
        }
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for bits in [1u32, 7, 63, 64, 65, 130] {
            for _ in 0..20 {
                assert!(random_bits(bits, &mut r).bit_len() <= bits);
            }
        }
        assert_eq!(random_bits(0, &mut r), Ubig::zero());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_prime_request_panics() {
        gen_prime(8, &mut rng());
    }
}
