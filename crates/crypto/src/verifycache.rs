//! Memoization of RSA signature-verification verdicts.
//!
//! Verification is a pure function of `(public key, payload, signature)`,
//! and the secure-MANET protocol re-runs it on identical triples
//! constantly: a destination answering several copies of one RREQ flood
//! re-checks the same source proof and the shared SRR prefix per copy; a
//! signed-RERR spammer repeats one `[IIP, I'IP]` payload verbatim. A
//! bounded LRU of verdicts turns every repeat into a hash lookup — and,
//! because the verdict is pure, memoizing it cannot change any protocol
//! decision, only the CPU spent reaching it.
//!
//! The cache key is the triple of digests
//! `(SHA-256(pk), SHA-256(payload), SHA-256(sig))` — the full inputs are
//! never retained, and a forged signature over a cached-valid payload
//! maps to a *different* key, so a cached `true` can never be returned
//! for material that was not itself verified (see the poisoning
//! proptests in `tests/properties.rs`).

use crate::fxhash::FxHashMap;
use crate::rsa::{PublicKey, Signature};
use crate::sha256::sha256;

/// Cache key: digests of the exact verification inputs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VerifyKey {
    pk: [u8; 32],
    payload: [u8; 32],
    sig: [u8; 32],
}

impl VerifyKey {
    /// Digest the `(key, payload, signature)` triple. Each component is
    /// hashed separately, so no length-prefix ambiguity can alias two
    /// distinct triples.
    pub fn for_triple(pk: &PublicKey, payload: &[u8], sig: &Signature) -> Self {
        VerifyKey {
            pk: *pk.digest(),
            payload: sha256(payload),
            sig: sha256(&sig.to_bytes()),
        }
    }
}

/// Where a verdict came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// The RSA computation ran.
    Computed,
    /// Served from the memo table.
    Cached,
}

/// Intrusive doubly-linked-list slot: `prev`/`next` index into `slots`.
#[derive(Debug)]
struct Slot {
    key: VerifyKey,
    valid: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A bounded LRU of verification verdicts. O(1) lookup, insert, and
/// eviction; entirely deterministic (no clocks, no randomness), so
/// caching never perturbs a seeded simulation.
#[derive(Debug)]
pub struct VerifyCache {
    map: FxHashMap<VerifyKey, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot index (NIL when empty).
    head: usize,
    /// Least-recently-used slot index (NIL when empty).
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl VerifyCache {
    /// A cache holding at most `capacity` verdicts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        VerifyCache {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Verify `sig` over `payload` under `pk`, consulting the memo table
    /// first. Returns the verdict and whether it was served from cache.
    pub fn verify(
        &mut self,
        pk: &PublicKey,
        payload: &[u8],
        sig: &Signature,
    ) -> (bool, Provenance) {
        self.verify_with(pk, payload, sig, || pk.verify(payload, sig).is_ok())
    }

    /// Like [`Self::verify`], but the miss path runs `compute` instead of
    /// the RSA pipeline — the hook by which pluggable backends and the
    /// network-wide batch table supply verdicts while this cache keeps
    /// exactly its usual hit/miss/LRU behavior.
    pub fn verify_with(
        &mut self,
        pk: &PublicKey,
        payload: &[u8],
        sig: &Signature,
        compute: impl FnOnce() -> bool,
    ) -> (bool, Provenance) {
        let key = VerifyKey::for_triple(pk, payload, sig);
        if let Some(valid) = self.lookup(&key) {
            return (valid, Provenance::Cached);
        }
        let valid = compute();
        self.insert(key, valid);
        (valid, Provenance::Computed)
    }

    /// Cached verdict for `key` without promoting it or touching the
    /// hit/miss counters. For speculative readers (batch prefetch) that
    /// must leave the cache byte-identical to an untouched one.
    pub fn peek(&self, key: &VerifyKey) -> Option<bool> {
        self.map.get(key).map(|&idx| self.slots[idx].valid)
    }

    /// Cached verdict for `key`, promoting it to most-recently-used.
    pub fn lookup(&mut self, key: &VerifyKey) -> Option<bool> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.promote(idx);
                Some(self.slots[idx].valid)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a verdict, evicting the least-recently-used entry at
    /// capacity. Re-inserting an existing key updates and promotes it.
    pub fn insert(&mut self, key: VerifyKey, valid: bool) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].valid = valid;
            self.promote(idx);
            return;
        }
        let idx = if self.map.len() == self.capacity {
            // Reuse the LRU slot in place.
            let idx = self.tail;
            self.unlink(idx);
            let old = std::mem::replace(
                &mut self.slots[idx],
                Slot {
                    key,
                    valid,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.evictions += 1;
            idx
        } else {
            self.slots.push(Slot {
                key,
                valid,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    fn promote(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to (or would require) real verification.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::KeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn keypair(seed: u64) -> KeyPair {
        KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(seed))
    }

    /// A synthetic key whose digests are derived from `tag` — no RSA
    /// needed for pure LRU mechanics tests.
    fn key(tag: u8) -> VerifyKey {
        VerifyKey {
            pk: [tag; 32],
            payload: [tag.wrapping_add(1); 32],
            sig: [tag.wrapping_add(2); 32],
        }
    }

    #[test]
    fn verdicts_match_direct_verification() {
        let kp = keypair(1);
        let other = keypair(2);
        let sig = kp.sign(b"payload");
        let mut cache = VerifyCache::new(8);

        let (v1, p1) = cache.verify(kp.public(), b"payload", &sig);
        assert_eq!((v1, p1), (true, Provenance::Computed));
        let (v2, p2) = cache.verify(kp.public(), b"payload", &sig);
        assert_eq!((v2, p2), (true, Provenance::Cached));

        // Wrong payload and wrong key are cached as *invalid*, not
        // confused with the valid entry.
        assert!(!cache.verify(kp.public(), b"other", &sig).0);
        assert!(!cache.verify(other.public(), b"payload", &sig).0);
        assert!(cache.verify(kp.public(), b"payload", &sig).0);
    }

    #[test]
    fn forged_signature_never_hits_the_valid_entry() {
        let kp = keypair(3);
        let sig = kp.sign(b"msg");
        let mut cache = VerifyCache::new(8);
        assert!(cache.verify(kp.public(), b"msg", &sig).0);

        let mut bytes = sig.to_bytes();
        bytes[0] ^= 0x01;
        let forged = Signature::from_bytes(&bytes);
        let (valid, prov) = cache.verify(kp.public(), b"msg", &forged);
        assert!(!valid, "tampered signature must be rejected");
        assert_eq!(prov, Provenance::Computed, "must not alias the cached key");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = VerifyCache::new(2);
        c.insert(key(1), true);
        c.insert(key(2), false);
        assert_eq!(c.lookup(&key(1)), Some(true)); // promote 1; LRU is now 2
        c.insert(key(3), true); // evicts 2
        assert_eq!(c.lookup(&key(2)), None);
        assert_eq!(c.lookup(&key(1)), Some(true));
        assert_eq!(c.lookup(&key(3)), Some(true));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = VerifyCache::new(2);
        c.insert(key(1), true);
        c.insert(key(1), false);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&key(1)), Some(false));
    }

    #[test]
    fn capacity_one_still_works() {
        let mut c = VerifyCache::new(1);
        for tag in 0..10u8 {
            c.insert(key(tag), tag % 2 == 0);
            assert_eq!(c.len(), 1);
            assert_eq!(c.lookup(&key(tag)), Some(tag % 2 == 0));
        }
        assert_eq!(c.evictions(), 9);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = VerifyCache::new(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = VerifyCache::new(4);
        assert_eq!(c.lookup(&key(1)), None);
        c.insert(key(1), true);
        c.lookup(&key(1));
        c.lookup(&key(1));
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn peek_neither_promotes_nor_counts() {
        let mut c = VerifyCache::new(2);
        c.insert(key(1), true);
        c.insert(key(2), false);
        // Peeking 1 must not promote it...
        assert_eq!(c.peek(&key(1)), Some(true));
        assert_eq!(c.peek(&key(3)), None);
        // ...so inserting 3 still evicts 1 (the LRU), not 2.
        c.insert(key(3), true);
        assert_eq!(c.peek(&key(1)), None);
        assert_eq!(c.peek(&key(2)), Some(false));
        // And no peek touched the stats.
        assert_eq!((c.hits(), c.misses()), (0, 0));
    }

    #[test]
    fn verify_with_supplier_feeds_miss_path_only() {
        let kp = keypair(5);
        let sig = kp.sign(b"x");
        let mut c = VerifyCache::new(4);
        let mut calls = 0u32;
        let (v, p) = c.verify_with(kp.public(), b"x", &sig, || {
            calls += 1;
            true
        });
        assert_eq!((v, p, calls), (true, Provenance::Computed, 1));
        // Hit path must not invoke the supplier.
        let (v, p) = c.verify_with(kp.public(), b"x", &sig, || {
            panic!("supplier must not run on a cache hit")
        });
        assert_eq!((v, p), (true, Provenance::Cached));
    }

    #[test]
    fn distinct_triples_distinct_keys() {
        let kp = keypair(4);
        let sig_a = kp.sign(b"a");
        let sig_b = kp.sign(b"b");
        let k1 = VerifyKey::for_triple(kp.public(), b"a", &sig_a);
        let k2 = VerifyKey::for_triple(kp.public(), b"b", &sig_a);
        let k3 = VerifyKey::for_triple(kp.public(), b"a", &sig_b);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1, VerifyKey::for_triple(kp.public(), b"a", &sig_a));
    }

    #[test]
    fn eviction_stress_keeps_list_consistent() {
        // Interleaved inserts and promotes across many evictions: the
        // intrusive list must stay a proper chain.
        let mut c = VerifyCache::new(8);
        for round in 0..100u32 {
            let tag = (round % 23) as u8;
            c.insert(key(tag), tag.is_multiple_of(3));
            c.lookup(&key((round % 7) as u8));
            assert!(c.len() <= 8);
        }
        // Every mapped entry is reachable and consistent.
        for tag in 0..23u8 {
            if let Some(v) = c.lookup(&key(tag)) {
                assert_eq!(v, tag.is_multiple_of(3));
            }
        }
    }
}
