//! # manet-crypto
//!
//! From-scratch cryptographic substrate for the secure-MANET reproduction:
//!
//! * [`uint::Ubig`] — arbitrary-precision unsigned integers (Karatsuba
//!   multiplication, Knuth Algorithm-D division);
//! * [`modular`] — Montgomery-form modular exponentiation and modular
//!   inverse;
//! * [`prime`] — Miller–Rabin testing and random prime generation;
//! * [`rsa`] — RSA signatures with message recovery, the paper's
//!   `[msg]XSK` primitive;
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, the paper's hash `H`;
//! * [`verifycache`] — a bounded LRU memoizing signature-verification
//!   verdicts (pure-function caching, safe under seeded determinism);
//! * [`backend`] — pluggable signature backends ([`BackendKind::Rsa`]
//!   the oracle, [`BackendKind::Null`] constant-true,
//!   [`BackendKind::HashSig`] a fast forgeable stand-in), selected per
//!   scenario or via `MANET_CRYPTO`;
//! * [`batch`] — network-wide deferred batch verification: per-tick
//!   dedup of `(pk, payload, sig)` triples, each unique triple verified
//!   once and the verdict shared across every requesting node.
//!
//! No external crypto crates are used anywhere in the workspace; this
//! crate is the sole provider (see DESIGN.md §2).

pub mod backend;
pub mod batch;
pub mod fxhash;
pub mod limb;
pub mod modular;
pub mod prime;
pub mod rsa;
pub mod sha256;
pub mod uint;
pub mod verifycache;

pub use backend::{backend_for, BackendKind, CryptoBackend};
pub use batch::{BatchStats, BatchVerifier};
pub use rsa::{KeyPair, PublicKey, RsaError, Signature};
pub use sha256::{hmac_sha256, sha256, Sha256};
pub use uint::Ubig;
pub use verifycache::{Provenance, VerifyCache, VerifyKey};

/// The paper's `H(PK, rn)`: hash the public key bytes and the random
/// modifier, truncate to the low 64 bits for the IPv6 interface identifier.
pub fn h_pk_rn(pk: &PublicKey, rn: u64) -> u64 {
    let mut h = Sha256::new();
    h.update(b"CGA-IID-v1");
    h.update(&pk.to_bytes());
    h.update(&rn.to_be_bytes());
    let digest = h.finalize();
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn h_pk_rn_depends_on_both_inputs() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let kp1 = KeyPair::generate(512, &mut rng);
        let kp2 = KeyPair::generate(512, &mut rng);
        let a = h_pk_rn(kp1.public(), 1);
        assert_eq!(a, h_pk_rn(kp1.public(), 1), "deterministic");
        assert_ne!(a, h_pk_rn(kp1.public(), 2), "rn matters");
        assert_ne!(a, h_pk_rn(kp2.public(), 1), "key matters");
    }
}
