//! Modular arithmetic: Montgomery-form exponentiation and modular inverse.
//!
//! RSA spends essentially all of its time in `modpow`, so that path uses a
//! Montgomery REDC context with a fixed 4-bit window. The remaining
//! operations (inverse, plain reduction) are cold and use the generic
//! [`Ubig`] division.

use crate::limb::{self, LIMB_BITS};
use crate::uint::Ubig;

/// Precomputed state for repeated arithmetic modulo an odd modulus `n`.
pub struct MontgomeryCtx {
    /// The (odd) modulus.
    n: Ubig,
    /// Limb count of `n`.
    k: usize,
    /// `-n^{-1} mod 2^64`, the REDC constant.
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64k)`; converts into Montgomery form.
    r2: Ubig,
    /// `1` in Montgomery form (`R mod n`), cached so every `modpow` call
    /// skips one REDC pass rebuilding it.
    one_m: Ubig,
}

impl MontgomeryCtx {
    /// Build a context for odd modulus `n > 1`.
    ///
    /// # Panics
    /// Panics if `n` is even or `< 2` — Montgomery reduction requires
    /// `gcd(n, 2^64) = 1`.
    pub fn new(n: &Ubig) -> Self {
        assert!(!n.is_even(), "Montgomery modulus must be odd");
        assert!(*n > Ubig::one(), "modulus must exceed 1");
        let k = n.limbs().len();
        let n_prime = inv_limb_neg(n.limbs()[0]);
        // R^2 mod n via shifting: R2 = 2^(128k) mod n.
        let r2 = (Ubig::one() << (2 * k as u32 * LIMB_BITS)).div_rem(n).1;
        let mut ctx = MontgomeryCtx {
            n: n.clone(),
            k,
            n_prime,
            r2,
            one_m: Ubig::zero(),
        };
        // R mod n = REDC(R^2): derived once here instead of per modpow.
        ctx.one_m = ctx.redc({
            let mut t = ctx.r2.limbs().to_vec();
            t.resize(2 * ctx.k, 0);
            t
        });
        ctx
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// REDC: given `t < n*R`, compute `t * R^{-1} mod n`.
    ///
    /// `t` is consumed as a limb vector of length `2k` (padded).
    fn redc(&self, mut t: Vec<u64>) -> Ubig {
        t.resize(2 * self.k + 1, 0);
        let n_limbs = self.n.limbs();
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n_prime);
            // t += m * n << (64*i); the low limb of the addition zeroes t[i].
            let carry = limb::add_mul_limb(&mut t[i..], n_limbs, m);
            debug_assert_eq!(carry, 0);
            debug_assert_eq!(t[i], 0);
        }
        let mut out = Ubig::from_limbs(t[self.k..].to_vec());
        if out >= self.n {
            out -= &self.n;
        }
        out
    }

    /// Convert into Montgomery form: `a*R mod n`.
    fn to_mont(&self, a: &Ubig) -> Ubig {
        self.mont_mul(a, &self.r2)
    }

    /// Montgomery product: `a*b*R^{-1} mod n` for Montgomery-form inputs.
    fn mont_mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let prod = a * b;
        self.redc(prod.limbs().to_vec())
    }

    /// Montgomery squaring — the hot operation of modpow (the square-and-
    /// multiply ladder squares every exponent bit but multiplies only on
    /// set window digits). Uses the dedicated squaring path.
    fn mont_sqr(&self, a: &Ubig) -> Ubig {
        self.redc(a.square().limbs().to_vec())
    }

    /// `base^exp mod n` using a fixed 4-bit window, with a square-and-
    /// multiply fast path for sparse exponents.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().div_rem(&self.n).1;
        }
        let base = base.div_rem(&self.n).1;
        let base_m = self.to_mont(&base);

        // Sparse exponents (RSA's e = 65537 has two set bits) pay more
        // for the 14 window-table multiplies than the table saves; plain
        // left-to-right square-and-multiply does bits-1 squarings plus
        // one multiply per extra set bit.
        let set_bits: u32 = exp.limbs().iter().map(|l| l.count_ones()).sum();
        if set_bits <= 4 {
            let mut acc = base_m.clone();
            for i in (0..exp.bit_len() - 1).rev() {
                acc = self.mont_sqr(&acc);
                if exp.bit(i) {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
            return self.redc({
                let mut t = acc.limbs().to_vec();
                t.resize(2 * self.k, 0);
                t
            });
        }
        let one_m = self.one_m.clone();

        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(one_m.clone());
        table.push(base_m.clone());
        for i in 2..16 {
            let prev: &Ubig = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = one_m;
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let idx = w * 4 + (3 - b);
                digit <<= 1;
                if idx < bits && exp.bit(idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                started = true;
            } else if started {
                // keep acc
            }
            if !started && digit == 0 {
                continue;
            }
            started = true;
        }
        // Leave Montgomery form: multiply by 1.
        self.redc({
            let mut t = acc.limbs().to_vec();
            t.resize(2 * self.k, 0);
            t
        })
    }
}

/// `-n0^{-1} mod 2^64` via Newton–Hensel iteration (n0 odd).
fn inv_limb_neg(n0: u64) -> u64 {
    debug_assert!(n0 & 1 == 1);
    // x := n0^{-1} mod 2^64; five iterations double precision each time.
    let mut x = n0; // correct mod 2^3 already for odd n0? mod 8: n0*n0 ≡ 1, so x=n0 works mod 8.
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    debug_assert_eq!(n0.wrapping_mul(x), 1);
    x.wrapping_neg()
}

/// `base^exp mod n` for any `n > 1` (falls back to division-based
/// square-and-multiply when `n` is even).
pub fn modpow(base: &Ubig, exp: &Ubig, n: &Ubig) -> Ubig {
    assert!(*n > Ubig::one(), "modulus must exceed 1");
    if !n.is_even() {
        return MontgomeryCtx::new(n).modpow(base, exp);
    }
    // Cold path for even moduli (not used by RSA, kept for completeness).
    let mut result = Ubig::one();
    let mut b = base.div_rem(n).1;
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = (&result * &b).div_rem(n).1;
        }
        b = (&b * &b).div_rem(n).1;
    }
    result
}

/// Modular inverse `a^{-1} mod n`, if `gcd(a, n) = 1`.
///
/// Extended Euclid over non-negative values with sign tracking.
pub fn invmod(a: &Ubig, n: &Ubig) -> Option<Ubig> {
    if n.is_zero() || a.is_zero() {
        return None;
    }
    // Invariants: r0 = s0*a mod n (up to sign), gcd chain on (r0, r1).
    let mut r0 = n.clone();
    let mut r1 = a.div_rem(n).1;
    if r1.is_zero() {
        return None;
    }
    // Coefficients of `a`: track magnitude + sign separately.
    let mut s0 = Ubig::zero();
    let mut s0_neg = false;
    let mut s1 = Ubig::one();
    let mut s1_neg = false;

    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1);
        // s2 = s0 - q*s1 (signed)
        let qs1 = &q * &s1;
        let (s2, s2_neg) = signed_sub((s0, s0_neg), (qs1, s1_neg));
        r0 = core::mem::replace(&mut r1, r2);
        s0 = core::mem::replace(&mut s1, s2);
        s0_neg = core::mem::replace(&mut s1_neg, s2_neg);
    }
    if !r0.is_one() {
        return None; // not coprime
    }
    let mut inv = s0.div_rem(n).1;
    if s0_neg && !inv.is_zero() {
        inv = n - &inv;
    }
    Some(inv)
}

/// `(a, a_neg) - (b, b_neg)` on sign-magnitude pairs.
fn signed_sub(a: (Ubig, bool), b: (Ubig, bool)) -> (Ubig, bool) {
    let (a, a_neg) = a;
    let (b, b_neg) = b;
    match (a_neg, b_neg) {
        (false, true) => (a + b, false),
        (true, false) => (a + b, true),
        (an, _) => {
            // same sign: magnitude subtraction, sign flips if |b| > |a|
            if a >= b {
                (&a - &b, an && a != b)
            } else {
                (&b - &a, !an)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn inv_limb_neg_is_negative_inverse() {
        for n0 in [1u64, 3, 5, 0xdead_beef_0bad_f00d | 1, u64::MAX] {
            let x = inv_limb_neg(n0);
            assert_eq!(n0.wrapping_mul(x.wrapping_neg()), 1, "n0={n0}");
        }
    }

    #[test]
    fn modpow_small_known_values() {
        assert_eq!(modpow(&u(2), &u(10), &u(1000)), u(24));
        assert_eq!(modpow(&u(3), &u(0), &u(7)), u(1));
        assert_eq!(modpow(&u(0), &u(5), &u(7)), u(0));
        assert_eq!(modpow(&u(5), &u(117), &u(19)), {
            // 5^117 mod 19 by Fermat: 5^18 ≡ 1, 117 = 6*18+9, 5^9 mod 19
            let mut x = 1u64;
            for _ in 0..9 {
                x = x * 5 % 19;
            }
            u(x)
        });
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // p prime, a < p  =>  a^(p-1) ≡ 1 (mod p)
        let p = Ubig::from_hex("ffffffffffffffc5").unwrap(); // largest 64-bit prime
        for a in [2u64, 3, 0x1234_5678, 0xdead_beef] {
            let e = &p - &Ubig::one();
            assert_eq!(modpow(&u(a), &e, &p), Ubig::one(), "a={a}");
        }
    }

    #[test]
    fn modpow_matches_naive_for_multi_limb() {
        let n = Ubig::from_hex("c34f8e21b9d473a1550f9c2de38641c7").unwrap(); // odd 128-bit
        let b = Ubig::from_hex("123456789abcdef00fedcba987654321").unwrap();
        let e = u(65537);
        // naive square-and-multiply with division
        let mut naive = Ubig::one();
        let mut base = b.div_rem(&n).1;
        for i in 0..e.bit_len() {
            if e.bit(i) {
                naive = (&naive * &base).div_rem(&n).1;
            }
            base = (&base * &base).div_rem(&n).1;
        }
        assert_eq!(modpow(&b, &e, &n), naive);
    }

    /// Division-based square-and-multiply reference.
    fn naive_modpow(base: &Ubig, exp: &Ubig, n: &Ubig) -> Ubig {
        let mut result = Ubig::one();
        let mut b = base.div_rem(n).1;
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = (&result * &b).div_rem(n).1;
            }
            b = (&b * &b).div_rem(n).1;
        }
        result
    }

    #[test]
    fn sparse_and_windowed_exponents_agree_with_naive() {
        // Straddle the sparse-path threshold (≤ 4 set bits) from both
        // sides: the fast path and the windowed path must both match the
        // division-based reference.
        let n = Ubig::from_hex("c34f8e21b9d473a1550f9c2de38641c7").unwrap();
        let b = Ubig::from_hex("123456789abcdef00fedcba987654321").unwrap();
        for exp in [
            u(1),
            u(2),
            u(65537),       // RSA's e: two set bits
            u(0b1011),      // three set bits
            u(0b1111),      // four set bits: last sparse case
            u(0b11111),     // five set bits: first windowed case
            u(0xdead_beef), // dense
            Ubig::from_hex("ffffffffffffffffffffffffffffffff").unwrap(),
        ] {
            assert_eq!(
                modpow(&b, &exp, &n),
                naive_modpow(&b, &exp, &n),
                "exp={exp:?}"
            );
        }
    }

    #[test]
    fn modpow_even_modulus_fallback() {
        assert_eq!(modpow(&u(7), &u(13), &u(100)), u(7u64.pow(13) % 100));
    }

    #[test]
    fn montgomery_ctx_rejects_even_modulus() {
        let r = std::panic::catch_unwind(|| MontgomeryCtx::new(&u(10)));
        assert!(r.is_err());
    }

    #[test]
    fn invmod_basics() {
        assert_eq!(invmod(&u(3), &u(7)), Some(u(5))); // 3*5=15≡1 mod 7
        assert_eq!(invmod(&u(2), &u(4)), None); // not coprime
        assert_eq!(invmod(&u(1), &u(97)), Some(u(1)));
        assert_eq!(invmod(&u(96), &u(97)), Some(u(96))); // (-1)^-1 = -1
    }

    #[test]
    fn invmod_large_verifies_by_multiplication() {
        let n = Ubig::from_hex("e4057cdd8e6e3c6f21a9b3c95d1fe801").unwrap(); // odd
        let a = Ubig::from_hex("deadbeef0badf00d").unwrap();
        let inv = invmod(&a, &n).expect("coprime");
        assert_eq!((&a * &inv).div_rem(&n).1, Ubig::one());
    }

    #[test]
    fn invmod_of_zero_and_zero_modulus() {
        assert_eq!(invmod(&Ubig::zero(), &u(7)), None);
        assert_eq!(invmod(&u(7), &Ubig::zero()), None);
        assert_eq!(invmod(&u(7), &u(7)), None);
    }

    #[test]
    fn signed_sub_cases() {
        // 5 - 3 = 2
        assert_eq!(signed_sub((u(5), false), (u(3), false)), (u(2), false));
        // 3 - 5 = -2
        assert_eq!(signed_sub((u(3), false), (u(5), false)), (u(2), true));
        // -3 - 5 = -8
        assert_eq!(signed_sub((u(3), true), (u(5), false)), (u(8), true));
        // 3 - (-5) = 8
        assert_eq!(signed_sub((u(3), false), (u(5), true)), (u(8), false));
        // -5 - (-3) = -2
        assert_eq!(signed_sub((u(5), true), (u(3), true)), (u(2), true));
        // -3 - (-5) = 2
        assert_eq!(signed_sub((u(3), true), (u(5), true)), (u(2), false));
        // 5 - 5 = 0 (never negative zero)
        assert_eq!(signed_sub((u(5), false), (u(5), false)), (u(0), false));
    }
}
