//! Low-level limb arithmetic.
//!
//! A multi-precision integer is stored as little-endian `u64` limbs. The
//! functions here are the carry/borrow-propagating primitives everything in
//! [`crate::uint`] is built from. They operate on raw slices so the higher
//! layers can work in place and avoid allocation on hot paths.

/// Number of bits in one limb.
pub const LIMB_BITS: u32 = 64;

/// `a + b + carry`, returning `(sum, carry_out)`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = a as u128 + b as u128 + carry as u128;
    (wide as u64, (wide >> LIMB_BITS) as u64)
}

/// `a - b - borrow`, returning `(diff, borrow_out)` with `borrow_out ∈ {0,1}`.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let wide = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (wide as u64, (wide >> 127) as u64)
}

/// `a * b + add + carry`, returning `(low, high)`.
#[inline(always)]
pub fn mac(a: u64, b: u64, add: u64, carry: u64) -> (u64, u64) {
    let wide = a as u128 * b as u128 + add as u128 + carry as u128;
    (wide as u64, (wide >> LIMB_BITS) as u64)
}

/// In-place `acc += rhs`, returning the final carry (0 or 1).
///
/// `acc` must be at least as long as `rhs`.
pub fn add_assign(acc: &mut [u64], rhs: &[u64]) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut carry = 0;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (s, c) = adc(*a, b, carry);
        *a = s;
        carry = c;
    }
    if carry != 0 {
        for a in acc[rhs.len()..].iter_mut() {
            let (s, c) = adc(*a, 0, carry);
            *a = s;
            carry = c;
            if carry == 0 {
                break;
            }
        }
    }
    carry
}

/// In-place `acc -= rhs`, returning the final borrow (0 or 1).
///
/// `acc` must be at least as long as `rhs`.
pub fn sub_assign(acc: &mut [u64], rhs: &[u64]) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut borrow = 0;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (d, bo) = sbb(*a, b, borrow);
        *a = d;
        borrow = bo;
    }
    if borrow != 0 {
        for a in acc[rhs.len()..].iter_mut() {
            let (d, bo) = sbb(*a, 0, borrow);
            *a = d;
            borrow = bo;
            if borrow == 0 {
                break;
            }
        }
    }
    borrow
}

/// `acc[..] += a * b` where `acc` is at least `a.len() + 1` long.
/// Returns the carry out of the last touched limb.
pub fn add_mul_limb(acc: &mut [u64], a: &[u64], b: u64) -> u64 {
    debug_assert!(acc.len() >= a.len());
    let mut carry = 0;
    for (acc_i, &a_i) in acc.iter_mut().zip(a.iter()) {
        let (lo, hi) = mac(a_i, b, *acc_i, carry);
        *acc_i = lo;
        carry = hi;
    }
    let mut i = a.len();
    while carry != 0 && i < acc.len() {
        let (s, c) = adc(acc[i], 0, carry);
        acc[i] = s;
        carry = c;
        i += 1;
    }
    carry
}

/// Schoolbook product `out = a * b`. `out` must be zeroed and exactly
/// `a.len() + b.len()` long.
pub fn mul_schoolbook(out: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    debug_assert!(out.iter().all(|&w| w == 0));
    for (j, &b_j) in b.iter().enumerate() {
        if b_j == 0 {
            continue;
        }
        let carry = add_mul_limb(&mut out[j..j + a.len()], a, b_j);
        out[j + a.len()] = carry;
    }
}

/// Schoolbook squaring `out = a²`, exploiting the symmetry
/// `a·a = Σ aᵢ²·B^(2i) + 2·Σ_{i<j} aᵢaⱼ·B^(i+j)`: roughly half the limb
/// products of a general multiplication. `out` must be zeroed and exactly
/// `2·a.len()` long.
pub fn sqr_schoolbook(out: &mut [u64], a: &[u64]) {
    debug_assert_eq!(out.len(), 2 * a.len());
    debug_assert!(out.iter().all(|&w| w == 0));
    if a.is_empty() {
        return;
    }
    // Off-diagonal products a_i * a_j for i < j.
    for (i, &a_i) in a.iter().enumerate() {
        let mut carry = 0u64;
        for (j, &a_j) in a.iter().enumerate().skip(i + 1) {
            let (lo, hi) = mac(a_i, a_j, out[i + j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + a.len()] = carry;
    }
    // Double them: out <<= 1.
    let spill = shl_small(out, 1);
    debug_assert_eq!(spill, 0, "top limb always has headroom");
    // Add the diagonal a_i².
    let mut carry = 0u64;
    for (i, &a_i) in a.iter().enumerate() {
        let (lo, hi) = mac(a_i, a_i, out[2 * i], carry);
        out[2 * i] = lo;
        let (s, c) = adc(out[2 * i + 1], hi, 0);
        out[2 * i + 1] = s;
        carry = c;
    }
    debug_assert_eq!(carry, 0);
}

/// Shift `limbs` left by `sh` bits (`sh < 64`), returning the bits shifted
/// out of the top limb.
pub fn shl_small(limbs: &mut [u64], sh: u32) -> u64 {
    debug_assert!(sh < LIMB_BITS);
    if sh == 0 {
        return 0;
    }
    let mut carry = 0;
    for w in limbs.iter_mut() {
        let new_carry = *w >> (LIMB_BITS - sh);
        *w = (*w << sh) | carry;
        carry = new_carry;
    }
    carry
}

/// Shift `limbs` right by `sh` bits (`sh < 64`).
pub fn shr_small(limbs: &mut [u64], sh: u32) {
    debug_assert!(sh < LIMB_BITS);
    if sh == 0 {
        return;
    }
    let mut carry = 0;
    for w in limbs.iter_mut().rev() {
        let new_carry = *w << (LIMB_BITS - sh);
        *w = (*w >> sh) | carry;
        carry = new_carry;
    }
}

/// Compare two equal-length limb slices as little-endian integers.
pub fn cmp_same_len(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (&x, &y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(&y) {
            core::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_max_operands_do_not_overflow() {
        // (2^64-1)^2 + (2^64-1) + (2^64-1) = 2^128 - 1, the u128 max.
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn add_assign_propagates_through_upper_limbs() {
        let mut acc = vec![u64::MAX, u64::MAX, 7];
        let carry = add_assign(&mut acc, &[1]);
        assert_eq!(carry, 0);
        assert_eq!(acc, vec![0, 0, 8]);
    }

    #[test]
    fn add_assign_returns_overflow_carry() {
        let mut acc = vec![u64::MAX];
        assert_eq!(add_assign(&mut acc, &[1]), 1);
        assert_eq!(acc, vec![0]);
    }

    #[test]
    fn sub_assign_borrows_through_upper_limbs() {
        let mut acc = vec![0, 0, 8];
        let borrow = sub_assign(&mut acc, &[1]);
        assert_eq!(borrow, 0);
        assert_eq!(acc, vec![u64::MAX, u64::MAX, 7]);
    }

    #[test]
    fn mul_schoolbook_small() {
        let mut out = vec![0; 2];
        mul_schoolbook(&mut out, &[6], &[7]);
        assert_eq!(out, vec![42, 0]);
    }

    #[test]
    fn mul_schoolbook_cross_limb() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let mut out = vec![0; 2];
        mul_schoolbook(&mut out, &[u64::MAX], &[u64::MAX]);
        assert_eq!(out, vec![1, u64::MAX - 1]);
    }

    #[test]
    fn sqr_schoolbook_matches_mul() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![3],
            vec![u64::MAX],
            vec![u64::MAX, u64::MAX],
            vec![1, 2, 3, 4, 5],
            vec![0xdead_beef, 0, 0xffff_ffff_ffff_ffff, 7],
        ];
        for a in cases {
            let mut sq = vec![0u64; 2 * a.len()];
            sqr_schoolbook(&mut sq, &a);
            let mut mu = vec![0u64; 2 * a.len()];
            mul_schoolbook(&mut mu, &a, &a);
            assert_eq!(sq, mu, "a={a:?}");
        }
    }

    #[test]
    fn shl_shr_roundtrip() {
        let mut v = vec![0xdead_beef_0badu64, 0x1234];
        let orig = v.clone();
        let spill = shl_small(&mut v, 13);
        assert_eq!(spill, 0); // top limb has headroom
        shr_small(&mut v, 13);
        assert_eq!(v, orig);
    }

    #[test]
    fn cmp_same_len_orders_by_high_limb() {
        assert_eq!(cmp_same_len(&[0, 2], &[u64::MAX, 1]), Ordering::Greater);
        assert_eq!(cmp_same_len(&[3, 1], &[3, 1]), Ordering::Equal);
        assert_eq!(cmp_same_len(&[4, 1], &[3, 2]), Ordering::Less);
    }
}
