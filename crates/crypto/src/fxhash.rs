//! Deterministic Fx hashing for the crypto layer's lookup tables
//! (verify cache, batch dedup/verdict maps).
//!
//! `manet-crypto` sits at the bottom of the workspace dependency graph
//! — below `manet-sim`, whose `fxhash` module is the canonical copy —
//! so it carries this small mirror of the same multiply-rotate-fold
//! hasher (same SEED, same avalanche finish). Keep the two in sync;
//! the hasher is frozen by the determinism suites either way, since a
//! changed hash function is invisible to lookups and iteration order
//! never leaks (manet-lint `unordered-iter`).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap`/`HashSet` alias pair on the Fx hasher.
// lint: allow(default-hasher) — alias definition site: the std type is rebound onto the Fx hasher here
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
// lint: allow(default-hasher) — alias definition site: the std type is rebound onto the Fx hasher here
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash folding hasher (64-bit variant); see
/// `manet_sim::fxhash` for the design notes.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint: allow(panic-budget) — chunks_exact(8) guarantees 8-byte slices; the conversion cannot fail
            self.add(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Fold-multiply-fold avalanche: pushes high-bit entropy down
        // into the bucket-index bits (see manet_sim::fxhash::finish).
        let h = self.hash;
        let h = (h ^ (h >> 32)).wrapping_mul(SEED);
        h ^ (h >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_the_canonical_hasher() {
        // The two copies must agree; this pins the mirror to the same
        // fold + avalanche. (Cross-crate equality with manet_sim's copy
        // is asserted in the workspace-level lint test, where both
        // crates are visible.)
        let mut h = FxHasher::default();
        h.write(b"fec0::13");
        let one = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"fec0::13");
        assert_eq!(one, h2.finish());
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(7, 8);
        assert_eq!(m.get(&7), Some(&8));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
    }
}
