//! RSA signatures with message recovery.
//!
//! The paper writes `[msg]XSK` for "the ciphertext of `msg` encrypted by
//! host X's private key", verified by decrypting with the public key `XPK`
//! and comparing against the expected plaintext. That is exactly an RSA
//! signature with message recovery over a deterministic encoding; we sign
//! the SHA-256 digest of the message inside an EMSA-PKCS#1-v1.5-shaped
//! frame:
//!
//! ```text
//! 0x00 0x01 0xFF … 0xFF 0x00 <32-byte SHA-256 digest>
//! ```
//!
//! Signing uses the CRT (p, q, dP, dQ, qInv) for a ~4x speedup; a CRT
//! fault check (`verify after sign` against the public key) guards against
//! the classic Bellcore fault-attack-shaped implementation bug.

use crate::modular::{invmod, MontgomeryCtx};
use crate::prime::gen_prime;
use crate::sha256::{sha256, DIGEST_LEN};
use crate::uint::Ubig;
use rand::Rng;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Public exponent: F4 = 65537.
const E: u64 = 65537;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Signature does not verify under the given public key.
    BadSignature,
    /// Signature integer is not smaller than the modulus.
    SignatureOutOfRange,
    /// Key material is malformed (e.g. modulus too small for the frame).
    InvalidKey,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::BadSignature => write!(f, "signature verification failed"),
            RsaError::SignatureOutOfRange => write!(f, "signature not reduced modulo n"),
            RsaError::InvalidKey => write!(f, "invalid RSA key material"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key `(n, e)`.
///
/// Cloning is cheap: the Montgomery context for `n` is shared behind an
/// [`Arc`] so every verification reuses the precomputation.
#[derive(Clone)]
pub struct PublicKey {
    n: Ubig,
    e: Ubig,
    ctx: Arc<MontgomeryCtx>,
    /// Memoized `SHA-256(to_bytes())`; shared across clones so the digest
    /// (and the [`Self::fingerprint`] derived from it) is computed once
    /// per key, not once per call.
    digest: Arc<OnceLock<[u8; 32]>>,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}
impl Eq for PublicKey {}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.n.to_hex();
        let head = &hex[..hex.len().min(8)];
        write!(f, "PublicKey(n≈0x{head}…, {} bits)", self.n.bit_len())
    }
}

impl PublicKey {
    /// Construct from raw modulus and exponent.
    pub fn from_parts(n: Ubig, e: Ubig) -> Result<Self, RsaError> {
        if n.is_even() || n.bit_len() < 256 || e.is_zero() || e.is_even() {
            return Err(RsaError::InvalidKey);
        }
        let ctx = Arc::new(MontgomeryCtx::new(&n));
        Ok(PublicKey {
            n,
            e,
            ctx,
            digest: Arc::new(OnceLock::new()),
        })
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Modulus size in bytes (= signature size).
    pub fn modulus_len(&self) -> usize {
        (self.n.bit_len() as usize).div_ceil(8)
    }

    /// Serialize as `len(n) || n_be || len(e) || e_be` (u16 lengths).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_be_bytes();
        let e = self.e.to_be_bytes();
        let mut out = Vec::with_capacity(4 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u16).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u16).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parse the [`Self::to_bytes`] encoding.
    pub fn from_bytes(data: &[u8]) -> Result<Self, RsaError> {
        let (n, rest) = read_chunk(data).ok_or(RsaError::InvalidKey)?;
        let (e, rest) = read_chunk(rest).ok_or(RsaError::InvalidKey)?;
        if !rest.is_empty() {
            return Err(RsaError::InvalidKey);
        }
        PublicKey::from_parts(Ubig::from_be_bytes(n), Ubig::from_be_bytes(e))
    }

    /// Verify `sig` over `msg`. The paper's "decrypt `[msg]XSK` with `XPK`
    /// and compare": we recover the frame and compare digests.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), RsaError> {
        if sig.0 >= self.n {
            return Err(RsaError::SignatureOutOfRange);
        }
        let recovered = self.ctx.modpow(&sig.0, &self.e);
        let frame = recovered.to_be_bytes_padded(self.modulus_len());
        let expect = emsa_frame(msg, self.modulus_len())?;
        // Constant-time-ish comparison; the simulator is not a side-channel
        // target but the habit is free.
        let mut diff = 0u8;
        for (a, b) in frame.iter().zip(expect.iter()) {
            diff |= a ^ b;
        }
        if diff == 0 && frame.len() == expect.len() {
            Ok(())
        } else {
            Err(RsaError::BadSignature)
        }
    }

    /// `SHA-256(to_bytes())`, memoized on first use (the key material is
    /// immutable, so the digest is a pure function of the key). Also the
    /// key component of [`crate::VerifyKey`].
    pub fn digest(&self) -> &[u8; 32] {
        self.digest.get_or_init(|| sha256(&self.to_bytes()))
    }

    /// A short fingerprint of the key (first 8 digest bytes), used for
    /// logging and credit-table indexing.
    pub fn fingerprint(&self) -> u64 {
        u64::from_be_bytes(self.digest()[..8].try_into().expect("8 bytes"))
    }
}

fn read_chunk(data: &[u8]) -> Option<(&[u8], &[u8])> {
    if data.len() < 2 {
        return None;
    }
    let len = u16::from_be_bytes([data[0], data[1]]) as usize;
    if data.len() < 2 + len {
        return None;
    }
    Some((&data[2..2 + len], &data[2 + len..]))
}

/// An RSA signature (an integer modulo `n`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature(pub(crate) Ubig);

impl Signature {
    /// Serialize as minimal big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_be_bytes()
    }

    /// Parse from big-endian bytes.
    pub fn from_bytes(data: &[u8]) -> Self {
        Signature(Ubig::from_be_bytes(data))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.0.to_hex();
        write!(f, "Signature(0x{}…)", &hex[..hex.len().min(8)])
    }
}

/// An RSA key pair with CRT acceleration for signing.
pub struct KeyPair {
    public: PublicKey,
    /// Private exponent (kept for serialization/debugging; CRT is used to sign).
    d: Ubig,
    p: Ubig,
    q: Ubig,
    d_p: Ubig,
    d_q: Ubig,
    q_inv: Ubig,
    ctx_p: MontgomeryCtx,
    ctx_q: MontgomeryCtx,
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyPair({:?})", self.public)
    }
}

impl KeyPair {
    /// Generate a fresh key pair with a modulus of `bits` bits.
    ///
    /// `bits` must be ≥ 256 and even. 512-bit keys are the simulator
    /// default (fast, structurally faithful); benchmarks sweep to 2048.
    pub fn generate<R: Rng>(bits: u32, rng: &mut R) -> Self {
        assert!(bits >= 256, "modulus below 256 bits rejected");
        assert!(bits.is_multiple_of(2), "modulus bits must be even");
        let e = Ubig::from(E);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let one = Ubig::one();
            let phi = &(&p - &one) * &(&q - &one);
            let Some(d) = invmod(&e, &phi) else {
                continue; // gcd(e, phi) != 1; re-roll primes
            };
            let n = &p * &q;
            debug_assert_eq!(n.bit_len(), bits);
            let d_p = d.div_rem(&(&p - &one)).1;
            let d_q = d.div_rem(&(&q - &one)).1;
            let q_inv = invmod(&q, &p).expect("p, q distinct primes");
            let public = PublicKey::from_parts(n, e.clone()).expect("valid by construction");
            let ctx_p = MontgomeryCtx::new(&p);
            let ctx_q = MontgomeryCtx::new(&q);
            return KeyPair {
                public,
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
                ctx_p,
                ctx_q,
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Sign `msg`: the paper's `[msg]XSK`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let frame = emsa_frame(msg, self.public.modulus_len()).expect("key admits frame");
        let m = Ubig::from_be_bytes(&frame);
        // CRT: s_p = m^dP mod p, s_q = m^dQ mod q, recombine via Garner.
        let s_p = self.ctx_p.modpow(&m, &self.d_p);
        let s_q = self.ctx_q.modpow(&m, &self.d_q);
        // h = qInv * (s_p - s_q) mod p
        let s_q_mod_p = s_q.div_rem(&self.p).1;
        let diff = if s_p >= s_q_mod_p {
            &s_p - &s_q_mod_p
        } else {
            &(&s_p + &self.p) - &s_q_mod_p
        };
        let h = (&self.q_inv * &diff).div_rem(&self.p).1;
        let s = &s_q + &(&h * &self.q);
        let sig = Signature(s);
        // Fault check: a CRT recombination bug would leak the factors in a
        // real deployment; here it guards implementation correctness.
        debug_assert!(self.public.verify(msg, &sig).is_ok());
        sig
    }

    /// Sign using the straight (non-CRT) exponent. Slower; exists so the
    /// benches can quantify the CRT speedup and tests can cross-check.
    pub fn sign_no_crt(&self, msg: &[u8]) -> Signature {
        let frame = emsa_frame(msg, self.public.modulus_len()).expect("key admits frame");
        let m = Ubig::from_be_bytes(&frame);
        Signature(self.public.ctx.modpow(&m, &self.d))
    }
}

/// Deterministic digest frame `0x00 0x01 FF… 0x00 digest`, `len` bytes.
fn emsa_frame(msg: &[u8], len: usize) -> Result<Vec<u8>, RsaError> {
    // Digest + 3 framing bytes + at least 8 bytes of padding.
    if len < DIGEST_LEN + 11 {
        return Err(RsaError::InvalidKey);
    }
    let mut frame = vec![0xFFu8; len];
    frame[0] = 0x00;
    frame[1] = 0x01;
    frame[len - DIGEST_LEN - 1] = 0x00;
    frame[len - DIGEST_LEN..].copy_from_slice(&sha256(msg));
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(42)
    }

    fn keypair() -> KeyPair {
        KeyPair::generate(512, &mut rng())
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let sig = kp.sign(b"hello manet");
        assert!(kp.public().verify(b"hello manet", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = keypair();
        let sig = kp.sign(b"route request 1");
        assert_eq!(
            kp.public().verify(b"route request 2", &sig),
            Err(RsaError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = keypair();
        let mut r2 = ChaCha12Rng::seed_from_u64(99);
        let kp2 = KeyPair::generate(512, &mut r2);
        let sig = kp1.sign(b"msg");
        assert!(kp2.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let kp = keypair();
        let sig = kp.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 0x01;
        let bad = Signature::from_bytes(&bytes);
        assert!(kp.public().verify(b"msg", &bad).is_err());
    }

    #[test]
    fn out_of_range_signature_rejected_cleanly() {
        let kp = keypair();
        let huge = Signature(kp.public().modulus() + &Ubig::one());
        assert_eq!(
            kp.public().verify(b"x", &huge),
            Err(RsaError::SignatureOutOfRange)
        );
    }

    #[test]
    fn crt_and_no_crt_agree() {
        let kp = keypair();
        for msg in [b"a".as_slice(), b"longer message with more bytes", b""] {
            assert_eq!(kp.sign(msg).to_bytes(), kp.sign_no_crt(msg).to_bytes());
        }
    }

    #[test]
    fn empty_message_signs() {
        let kp = keypair();
        assert!(kp.public().verify(b"", &kp.sign(b"")).is_ok());
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = keypair();
        let pk2 = PublicKey::from_bytes(&kp.public().to_bytes()).unwrap();
        assert_eq!(*kp.public(), pk2);
        let sig = kp.sign(b"serialize me");
        assert!(pk2.verify(b"serialize me", &sig).is_ok());
    }

    #[test]
    fn public_key_parse_rejects_malformed() {
        assert!(PublicKey::from_bytes(&[]).is_err());
        assert!(PublicKey::from_bytes(&[0, 5, 1, 2]).is_err());
        let kp = keypair();
        let mut bytes = kp.public().to_bytes();
        bytes.push(0); // trailing junk
        assert!(PublicKey::from_bytes(&bytes).is_err());
    }

    #[test]
    fn from_parts_validates() {
        assert!(PublicKey::from_parts(Ubig::from(15u64), Ubig::from(3u64)).is_err()); // too small
        let kp = keypair();
        assert!(PublicKey::from_parts(kp.public().modulus().clone(), Ubig::from(4u64)).is_err());
        // even e
    }

    #[test]
    fn fingerprints_differ_between_keys() {
        let kp1 = keypair();
        let mut r2 = ChaCha12Rng::seed_from_u64(1234);
        let kp2 = KeyPair::generate(512, &mut r2);
        assert_ne!(kp1.public().fingerprint(), kp2.public().fingerprint());
        // And stable for the same key.
        assert_eq!(kp1.public().fingerprint(), kp1.public().fingerprint());
    }

    #[test]
    fn memoized_digest_matches_recompute() {
        let kp = keypair();
        let pk = kp.public();
        // The memoized digest must equal a fresh hash of the encoding,
        // and the fingerprint must be its first 8 bytes (the pre-memo
        // definition).
        let fresh = sha256(&pk.to_bytes());
        assert_eq!(*pk.digest(), fresh);
        assert_eq!(
            pk.fingerprint(),
            u64::from_be_bytes(fresh[..8].try_into().unwrap())
        );
        // Clones share the memo cell; a reparsed key recomputes to the
        // same digest.
        let clone = pk.clone();
        assert_eq!(clone.digest(), pk.digest());
        let reparsed = PublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(*reparsed.digest(), fresh);
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = keypair();
        let sig = kp.sign(b"roundtrip");
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn deterministic_signing() {
        let kp = keypair();
        assert_eq!(kp.sign(b"det"), kp.sign(b"det"));
    }

    #[test]
    #[should_panic(expected = "below 256 bits")]
    fn tiny_keys_rejected() {
        KeyPair::generate(128, &mut rng());
    }
}
