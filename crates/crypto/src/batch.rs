//! Network-wide deferred batch verification.
//!
//! [`crate::VerifyCache`] memoizes verdicts *per node*; a DAD storm or
//! RREQ flood makes hundreds of nodes verify the *same* `(pk, payload,
//! sig)` triple in one engine tick, and each node's first sight of it
//! still pays a full modpow. The [`BatchVerifier`] closes that gap: a
//! speculative prefetch pass enqueues the triples a tick's frames are
//! about to check, a per-tick drain verifies each unique triple once
//! (in parallel under the sharded executor), and dispatch-time lookups
//! serve the shared verdict.
//!
//! Correctness rests on verdict purity: verification is a pure function
//! of the triple, so *where* the verdict came from (node cache, shared
//! table, or a fresh execution) can never change a protocol decision.
//! The protocol-visible accounting (per-node cache stats, metrics
//! counters) is charged at dispatch time exactly as if the node had
//! verified inline, which is what keeps run fingerprints byte-identical
//! between batched and inline runs. A missed prefetch only costs speed
//! (the dispatch path falls back to an inline execution); a spurious
//! one only wastes a backend op.

use crate::backend::CryptoBackend;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rsa::{PublicKey, Signature};
use crate::verifycache::VerifyKey;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Below this many unique pending triples a drain verifies serially —
/// fan-out overhead beats the win on tiny batches.
const PAR_THRESHOLD: usize = 8;

/// A triple waiting for its verdict.
struct PendingItem {
    key: VerifyKey,
    pk: PublicKey,
    payload: Vec<u8>,
    sig: Signature,
}

#[derive(Default)]
struct Pending {
    /// Dedup set over `items` (one entry per unique triple per tick).
    keys: FxHashSet<VerifyKey>,
    items: Vec<PendingItem>,
}

/// Execution counters, for benchmark reporting only (never part of a
/// run fingerprint).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Triples offered via [`BatchVerifier::enqueue`].
    pub requests: u64,
    /// Unique triples actually executed by drains.
    pub executed: u64,
    /// Drains that had work.
    pub drains: u64,
    /// Dispatch-time verdict lookups served from the shared table.
    pub table_hits: u64,
}

/// Shared verdict table + per-tick pending queue.
///
/// `enqueue` may run from parallel prefetch passes; `drain` runs
/// serially between ticks/windows; `verdict` may run from parallel
/// dispatch. All three are safe concurrently, but determinism only
/// needs the drain to be a barrier between enqueues and lookups —
/// which the engine's tick hook guarantees.
pub struct BatchVerifier {
    pending: Mutex<Pending>,
    verdicts: RwLock<FxHashMap<VerifyKey, bool>>,
    /// Verdict-table bound. At capacity the table is cleared *entirely*
    /// (not LRU-trimmed): crude, but deterministic regardless of hash
    /// iteration order, and correctness never depends on table content.
    capacity: usize,
    requests: AtomicU64,
    executed: AtomicU64,
    drains: AtomicU64,
    table_hits: AtomicU64,
}

impl BatchVerifier {
    /// A verifier whose shared table holds at most `capacity` verdicts
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BatchVerifier {
            pending: Mutex::new(Pending::default()),
            verdicts: RwLock::new(FxHashMap::with_capacity_and_hasher(
                capacity.min(4096),
                Default::default(),
            )),
            capacity,
            requests: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            table_hits: AtomicU64::new(0),
        }
    }

    /// Offer a triple for the next drain. Skips triples whose verdict
    /// the shared table already holds and triples already pending.
    pub fn enqueue(&self, pk: &PublicKey, payload: &[u8], sig: &Signature) {
        self.requests.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
        let key = VerifyKey::for_triple(pk, payload, sig);
        if self
            .verdicts
            .read()
            .expect("verdict lock")
            .contains_key(&key)
        {
            return;
        }
        let mut pending = self.pending.lock().expect("pending lock");
        if pending.keys.insert(key) {
            pending.items.push(PendingItem {
                key,
                pk: pk.clone(),
                payload: payload.to_vec(),
                sig: sig.clone(),
            });
        }
    }

    /// Verify every pending unique triple once and publish the verdicts.
    /// Called serially by the engine between ticks/windows.
    pub fn drain(&self, backend: &dyn CryptoBackend) {
        let items = {
            let mut pending = self.pending.lock().expect("pending lock");
            pending.keys.clear();
            std::mem::take(&mut pending.items)
        };
        if items.is_empty() {
            return;
        }
        // Re-filter against the table: a triple enqueued across two
        // ticks may have been published by the intervening drain.
        let items: Vec<PendingItem> = {
            let table = self.verdicts.read().expect("verdict lock");
            items
                .into_iter()
                .filter(|it| !table.contains_key(&it.key))
                .collect()
        };
        if items.is_empty() {
            return;
        }
        // Relaxed: bench-only op counters; never part of a run fingerprint.
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.executed
            .fetch_add(items.len() as u64, Ordering::Relaxed); // Relaxed: ditto
        let verdicts: Vec<(VerifyKey, bool)> = if items.len() >= PAR_THRESHOLD {
            items
                .par_iter()
                .map(|it| (it.key, backend.verify(&it.pk, &it.payload, &it.sig)))
                .collect()
        } else {
            items
                .iter()
                .map(|it| (it.key, backend.verify(&it.pk, &it.payload, &it.sig)))
                .collect()
        };
        let mut table = self.verdicts.write().expect("verdict lock");
        if table.len() + verdicts.len() > self.capacity {
            // Full flush at capacity: deterministic independent of hash
            // order, and only a perf (never correctness) event.
            table.clear();
        }
        table.extend(verdicts);
    }

    /// Shared verdict for `key`, if a drain has published one.
    pub fn verdict(&self, key: &VerifyKey) -> Option<bool> {
        let v = self
            .verdicts
            .read()
            .expect("verdict lock")
            .get(key)
            .copied();
        if v.is_some() {
            self.table_hits.fetch_add(1, Ordering::Relaxed); // Relaxed: bench-only op counter
        }
        v
    }

    /// Snapshot of the execution counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            requests: self.requests.load(Ordering::Relaxed), // Relaxed: counter snapshot
            executed: self.executed.load(Ordering::Relaxed), // Relaxed: counter snapshot
            drains: self.drains.load(Ordering::Relaxed),     // Relaxed: counter snapshot
            table_hits: self.table_hits.load(Ordering::Relaxed), // Relaxed: counter snapshot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{backend_for, BackendKind};
    use crate::rsa::KeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn keypair(seed: u64) -> KeyPair {
        KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(seed))
    }

    #[test]
    fn drain_verifies_each_unique_triple_once() {
        let kp = keypair(1);
        let backend = backend_for(BackendKind::Rsa);
        let sig = kp.sign(b"flooded rreq");
        let bv = BatchVerifier::new(64);
        // The same triple offered by "many nodes" in one tick...
        for _ in 0..10 {
            bv.enqueue(kp.public(), b"flooded rreq", &sig);
        }
        bv.drain(backend.as_ref());
        // ...runs the backend exactly once.
        assert_eq!(backend.verifies_executed(), 1);
        let key = VerifyKey::for_triple(kp.public(), b"flooded rreq", &sig);
        assert_eq!(bv.verdict(&key), Some(true));
        let s = bv.stats();
        assert_eq!(
            (s.requests, s.executed, s.drains, s.table_hits),
            (10, 1, 1, 1)
        );
    }

    #[test]
    fn verdicts_match_backend_for_good_and_bad_material() {
        let kp = keypair(2);
        let other = keypair(3);
        let backend = backend_for(BackendKind::Rsa);
        let sig = kp.sign(b"msg");
        let mut tampered = sig.to_bytes();
        tampered[0] ^= 1;
        let bad = Signature::from_bytes(&tampered);

        let bv = BatchVerifier::new(64);
        bv.enqueue(kp.public(), b"msg", &sig); // valid
        bv.enqueue(kp.public(), b"msg", &bad); // corrupted
        bv.enqueue(other.public(), b"msg", &sig); // wrong key
        bv.drain(backend.as_ref());

        assert_eq!(
            bv.verdict(&VerifyKey::for_triple(kp.public(), b"msg", &sig)),
            Some(true)
        );
        assert_eq!(
            bv.verdict(&VerifyKey::for_triple(kp.public(), b"msg", &bad)),
            Some(false)
        );
        assert_eq!(
            bv.verdict(&VerifyKey::for_triple(other.public(), b"msg", &sig)),
            Some(false)
        );
    }

    #[test]
    fn already_published_triples_skip_requeue_and_reexecution() {
        let kp = keypair(4);
        let backend = backend_for(BackendKind::HashSig);
        let sig = backend.sign(&kp, b"m");
        let bv = BatchVerifier::new(64);
        bv.enqueue(kp.public(), b"m", &sig);
        bv.drain(backend.as_ref());
        let executed = backend.verifies_executed();
        // Next tick offers the same triple: table already has it.
        bv.enqueue(kp.public(), b"m", &sig);
        bv.drain(backend.as_ref());
        assert_eq!(backend.verifies_executed(), executed);
    }

    #[test]
    fn capacity_flush_keeps_serving_correct_verdicts() {
        let kp = keypair(5);
        let backend = backend_for(BackendKind::HashSig);
        let bv = BatchVerifier::new(4);
        let mut sigs = Vec::new();
        for i in 0..12u8 {
            let payload = [i; 3];
            let sig = backend.sign(&kp, &payload);
            bv.enqueue(kp.public(), &payload, &sig);
            bv.drain(backend.as_ref());
            sigs.push((payload, sig));
        }
        // Whatever survived the flushes must agree with the backend;
        // evicted entries just miss.
        for (payload, sig) in &sigs {
            let key = VerifyKey::for_triple(kp.public(), payload, sig);
            if let Some(v) = bv.verdict(&key) {
                assert!(v);
            }
        }
    }

    #[test]
    fn large_batch_takes_parallel_path() {
        let kp = keypair(6);
        let backend = backend_for(BackendKind::HashSig);
        let bv = BatchVerifier::new(1024);
        let mut keys = Vec::new();
        for i in 0..(PAR_THRESHOLD as u8 * 3) {
            let payload = [i; 4];
            let sig = backend.sign(&kp, &payload);
            bv.enqueue(kp.public(), &payload, &sig);
            keys.push((VerifyKey::for_triple(kp.public(), &payload, &sig), true));
            // And one corrupted sibling per triple.
            let mut bad = sig.to_bytes();
            bad[0] ^= 1;
            let bad = Signature::from_bytes(&bad);
            bv.enqueue(kp.public(), &payload, &bad);
            keys.push((VerifyKey::for_triple(kp.public(), &payload, &bad), false));
        }
        bv.drain(backend.as_ref());
        for (key, expect) in keys {
            assert_eq!(bv.verdict(&key), Some(expect));
        }
    }

    #[test]
    fn empty_drain_is_free() {
        let backend = backend_for(BackendKind::Rsa);
        let bv = BatchVerifier::new(8);
        bv.drain(backend.as_ref());
        assert_eq!(bv.stats(), BatchStats::default());
    }
}
