//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is the paper's publicly-known one-way, collision-resistant hash
//! `H`. The incremental [`Sha256`] API is used both for CGA interface-ID
//! derivation (`H(PK, rn)`, truncated to 64 bits) and for message digests
//! fed into RSA signatures.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
        self
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, then 64-bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length bytes must not be counted again; write directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 (RFC 2104); used by tests and the simulator's
/// authenticated-trace option rather than the protocol itself.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k_block = [0u8; 64];
    if key.len() > 64 {
        k_block[..32].copy_from_slice(&sha256(key));
    } else {
        k_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k_block[i];
        opad[i] ^= k_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_all_boundaries() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 + 3) as u8).collect();
        let want = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), want, "split={split}");
        }
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        let key = vec![0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }
}
