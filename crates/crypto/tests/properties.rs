//! Property-based tests for the arithmetic core.
//!
//! These pin the ring axioms and division invariants that the RSA layer
//! silently depends on; a single wrong carry in the limb code shows up
//! here long before it corrupts a signature.

use manet_crypto::modular::{invmod, modpow};
use manet_crypto::prime::{is_prime, random_below};
use manet_crypto::uint::Ubig;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Strategy: a Ubig up to ~4 limbs from raw bytes.
fn ubig() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|b| Ubig::from_be_bytes(&b))
}

/// Strategy: a non-zero Ubig.
fn ubig_nonzero() -> impl Strategy<Value = Ubig> {
    ubig().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associates(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_then_sub_is_identity(a in ubig(), b in ubig()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn square_matches_self_multiplication(a in ubig()) {
        prop_assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn div_rem_invariant(a in ubig(), b in ubig_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn bytes_roundtrip(a in ubig()) {
        prop_assert_eq!(Ubig::from_be_bytes(&a.to_be_bytes()), a.clone());
        let padded = a.to_be_bytes_padded(40);
        prop_assert_eq!(padded.len(), 40);
        prop_assert_eq!(Ubig::from_be_bytes(&padded), a);
    }

    #[test]
    fn hex_roundtrip(a in ubig()) {
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn shift_roundtrip(a in ubig(), sh in 0u32..200) {
        prop_assert_eq!((a.clone() << sh) >> sh, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in ubig(), sh in 0u32..100) {
        let pow = Ubig::one() << sh;
        prop_assert_eq!(a.clone() << sh, &a * &pow);
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(), b in ubig_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.div_rem(&g).1.is_zero());
        prop_assert!(b.div_rem(&g).1.is_zero());
    }

    #[test]
    fn modpow_matches_naive(base in ubig(), exp in 0u64..64, modulus in ubig_nonzero()) {
        prop_assume!(modulus > Ubig::one());
        let e = Ubig::from(exp);
        let fast = modpow(&base, &e, &modulus);
        let mut naive = Ubig::one().div_rem(&modulus).1;
        for _ in 0..exp {
            naive = (&naive * &base).div_rem(&modulus).1;
        }
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn modpow_product_rule(base in ubig(), e1 in 0u64..32, e2 in 0u64..32, modulus in ubig_nonzero()) {
        // base^(e1+e2) == base^e1 * base^e2 (mod m)
        prop_assume!(modulus > Ubig::one());
        let lhs = modpow(&base, &Ubig::from(e1 + e2), &modulus);
        let a = modpow(&base, &Ubig::from(e1), &modulus);
        let b = modpow(&base, &Ubig::from(e2), &modulus);
        prop_assert_eq!(lhs, (&a * &b).div_rem(&modulus).1);
    }

    #[test]
    fn invmod_verifies_when_present(a in ubig_nonzero(), m in ubig_nonzero()) {
        prop_assume!(m > Ubig::one());
        if let Some(inv) = invmod(&a, &m) {
            prop_assert_eq!((&a * &inv).div_rem(&m).1, Ubig::one());
            prop_assert!(inv < m);
        } else {
            // No inverse means gcd(a, m) != 1.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in ubig(), b in ubig()) {
        if a >= b {
            let d = &a - &b;
            prop_assert_eq!(&d + &b, a);
        } else {
            let d = &b - &a;
            prop_assert!(!d.is_zero());
        }
    }
}

proptest! {
    // Heavier cases get fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_below_uniform_support(seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let bound = Ubig::from(17u64);
        let v = random_below(&bound, &mut rng);
        prop_assert!(v < bound);
    }

    #[test]
    fn fermat_holds_for_generated_primes(seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let p = manet_crypto::prime::gen_prime(96, &mut rng);
        prop_assert!(is_prime(&p, &mut rng));
        let a = Ubig::from(0x1234_5678u64);
        let e = &p - &Ubig::one();
        prop_assert_eq!(modpow(&a, &e, &p), Ubig::one());
    }

    #[test]
    fn sign_verify_tamper_rejected(msg in proptest::collection::vec(any::<u8>(), 0..128), flip in 0usize..64) {
        let mut rng = ChaCha12Rng::seed_from_u64(0xabcdef);
        let kp = manet_crypto::KeyPair::generate(512, &mut rng);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig).is_ok());
        let mut bytes = sig.to_bytes();
        if !bytes.is_empty() {
            let idx = flip % bytes.len();
            bytes[idx] ^= 1;
            let bad = manet_crypto::Signature::from_bytes(&bytes);
            prop_assert!(kp.public().verify(&msg, &bad).is_err());
        }
    }

    #[test]
    fn sha256_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..512), split_frac in 0.0f64..1.0) {
        let split = (data.len() as f64 * split_frac) as usize;
        let mut h = manet_crypto::Sha256::new();
        h.update(&data[..split]).update(&data[split..]);
        prop_assert_eq!(h.finalize(), manet_crypto::sha256(&data));
    }
}

/// The verify cache must be observationally invisible: for any input —
/// valid, corrupted-signature, or wrong-key — the cached pipeline returns
/// exactly the verdict direct verification returns, on first sight and on
/// every repeat, across evictions. A "poisoned" entry (a cached verdict
/// served for material that would verify differently) is impossible
/// because the key digests the full `(pk, payload, sig)` triple.
mod verify_cache_agreement {
    use manet_crypto::{KeyPair, Signature, VerifyCache};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use std::sync::OnceLock;

    /// Key generation is the expensive part; share two fixed pairs
    /// across all proptest cases.
    fn keys() -> &'static (KeyPair, KeyPair) {
        static KEYS: OnceLock<(KeyPair, KeyPair)> = OnceLock::new();
        KEYS.get_or_init(|| {
            let mut rng = ChaCha12Rng::seed_from_u64(0x5eed);
            (
                KeyPair::generate(512, &mut rng),
                KeyPair::generate(512, &mut rng),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cached_and_uncached_verdicts_agree(
            msg in proptest::collection::vec(any::<u8>(), 0..96),
            flip in 0usize..64,
            // 0 = valid, 1 = corrupted signature, 2 = wrong key
            case in 0u8..3,
            capacity in 1usize..16,
        ) {
            let (kp, other) = keys();
            let sig = kp.sign(&msg);
            let (pk, sig) = match case {
                0 => (kp.public(), sig),
                1 => {
                    let mut bytes = sig.to_bytes();
                    let idx = flip % bytes.len();
                    bytes[idx] ^= 1;
                    (kp.public(), Signature::from_bytes(&bytes))
                }
                _ => (other.public(), sig),
            };
            let direct = pk.verify(&msg, &sig).is_ok();
            let mut cache = VerifyCache::new(capacity);
            let (first, _) = cache.verify(pk, &msg, &sig);
            let (repeat, _) = cache.verify(pk, &msg, &sig);
            // First sight and cached repeat must both match direct verify.
            prop_assert_eq!(first, direct);
            prop_assert_eq!(repeat, direct);
        }

        #[test]
        fn interleaved_triples_never_cross_contaminate(
            msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 2..6),
            order in proptest::collection::vec(0usize..12, 4..24),
        ) {
            let (kp, other) = keys();
            // A tiny cache forces constant eviction while valid, forged,
            // and wrong-key verdicts for the same payloads interleave.
            let mut cache = VerifyCache::new(2);
            let signed: Vec<_> = msgs.iter().map(|m| kp.sign(m)).collect();
            for &pick in &order {
                let (i, variant) = (pick % msgs.len(), pick % 3);
                let (pk, sig) = match variant {
                    0 => (kp.public(), signed[i].clone()),
                    1 => {
                        let mut b = signed[i].to_bytes();
                        b[0] ^= 1;
                        (kp.public(), Signature::from_bytes(&b))
                    }
                    _ => (other.public(), signed[i].clone()),
                };
                let direct = pk.verify(&msgs[i], &sig).is_ok();
                let (cached, _) = cache.verify(pk, &msgs[i], &sig);
                prop_assert_eq!(cached, direct);
                prop_assert_eq!(direct, variant == 0);
            }
        }
    }
}
