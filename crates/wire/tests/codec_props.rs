//! Property-based tests for the wire codec: arbitrary well-formed
//! messages round-trip; arbitrary byte soup never panics the decoder.

use manet_wire::*;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<[u8; 16]>().prop_map(Ipv6Addr)
}

fn arb_rr() -> impl Strategy<Value = RouteRecord> {
    proptest::collection::vec(arb_addr(), 0..8).prop_map(RouteRecord)
}

fn arb_dn() -> impl Strategy<Value = DomainName> {
    "[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,2}"
        .prop_map(|s| DomainName::new(&s).expect("generated names are valid"))
}

fn arb_seq() -> impl Strategy<Value = Seq> {
    any::<u64>().prop_map(Seq)
}

fn arb_ch() -> impl Strategy<Value = Challenge> {
    any::<u64>().prop_map(Challenge)
}

// A structurally valid (but cryptographically meaningless) public key:
// parseable keys must pass PublicKey::from_parts validation, so we build
// them from a fixed corpus generated once.
fn arb_pk() -> impl Strategy<Value = manet_crypto::PublicKey> {
    use rand::SeedableRng;
    use std::sync::OnceLock;
    static CORPUS: OnceLock<Vec<manet_crypto::PublicKey>> = OnceLock::new();
    prop_oneof![Just(0usize), Just(1), Just(2)].prop_map(|i| {
        CORPUS.get_or_init(|| {
            (0..3u64)
                .map(|j| {
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1000 + j);
                    manet_crypto::KeyPair::generate(512, &mut rng)
                        .public()
                        .clone()
                })
                .collect()
        })[i]
            .clone()
    })
}

fn arb_sig() -> impl Strategy<Value = manet_crypto::Signature> {
    proptest::collection::vec(any::<u8>(), 1..64)
        .prop_map(|b| manet_crypto::Signature::from_bytes(&b))
}

fn arb_proof() -> impl Strategy<Value = IdentityProof> {
    (arb_pk(), any::<u64>(), arb_sig()).prop_map(|(pk, rn, sig)| IdentityProof { pk, rn, sig })
}

fn arb_srr() -> impl Strategy<Value = SecureRouteRecord> {
    proptest::collection::vec(
        (arb_addr(), arb_proof()).prop_map(|(ip, proof)| SrrEntry { ip, proof }),
        0..5,
    )
    .prop_map(SecureRouteRecord)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

/// Covers every one of the 20 `Message` variants, so the roundtrip
/// property below is a complete codec contract: adding a variant
/// without extending this strategy fails `all_variants_reachable`.
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            (arb_addr(), arb_addr(), arb_addr(), arb_seq(), arb_rr()),
            (arb_proof(), arb_seq(), arb_rr(), arb_proof())
        )
            .prop_map(
                |((s2ip, sip, dip, seq2, rr_s2_to_s), (s_proof, orig_seq, rr_s_to_d, d_proof))| {
                    Message::Crep(Crep {
                        s2ip,
                        sip,
                        dip,
                        seq2,
                        rr_s2_to_s,
                        s_proof,
                        orig_seq,
                        rr_s_to_d,
                        d_proof,
                    })
                }
            ),
        (arb_addr(), arb_addr(), arb_seq(), arb_rr()).prop_map(|(sip, dip, seq, route)| {
            Message::Probe(Probe {
                sip,
                dip,
                seq,
                route,
            })
        }),
        (arb_addr(), arb_seq(), arb_addr(), arb_proof()).prop_map(
            |(sip, probe_seq, hop, proof)| {
                Message::ProbeAck(ProbeAck {
                    sip,
                    probe_seq,
                    hop,
                    proof,
                })
            }
        ),
        (arb_dn(), arb_addr(), arb_addr(), arb_rr()).prop_map(|(dn, old_ip, new_ip, route)| {
            Message::IpChangeRequest(IpChangeRequest {
                dn,
                old_ip,
                new_ip,
                route,
            })
        }),
        (arb_dn(), arb_ch(), arb_rr()).prop_map(|(dn, ch, route)| {
            Message::IpChangeChallenge(IpChangeChallenge { dn, ch, route })
        }),
        (
            (arb_dn(), arb_addr(), arb_addr(), any::<u64>(), any::<u64>()),
            (arb_pk(), arb_sig(), arb_rr())
        )
            .prop_map(|((dn, old_ip, new_ip, old_rn, new_rn), (pk, sig, route))| {
                Message::IpChangeProof(IpChangeProof {
                    dn,
                    old_ip,
                    new_ip,
                    old_rn,
                    new_rn,
                    pk,
                    sig,
                    route,
                })
            }),
        (arb_dn(), any::<bool>(), arb_sig(), arb_rr()).prop_map(|(dn, accepted, sig, route)| {
            Message::IpChangeResult(IpChangeResult {
                dn,
                accepted,
                sig,
                route,
            })
        }),
        (arb_addr(), arb_addr(), arb_seq(), arb_rr())
            .prop_map(|(sip, dip, seq, rr)| Message::PlainRrep(PlainRrep { sip, dip, seq, rr })),
        (
            arb_addr(),
            arb_seq(),
            proptest::option::of(arb_dn()),
            arb_ch(),
            arb_rr()
        )
            .prop_map(|(sip, seq, dn, ch, rr)| Message::Areq(Areq {
                sip,
                seq,
                dn,
                ch,
                rr
            })),
        (arb_addr(), arb_rr(), arb_proof()).prop_map(|(sip, rr, proof)| Message::Arep(Arep {
            sip,
            rr,
            proof
        })),
        (arb_addr(), arb_rr(), arb_sig()).prop_map(|(sip, rr, sig)| Message::Drep(Drep {
            sip,
            rr,
            sig
        })),
        (arb_addr(), arb_addr(), arb_seq(), arb_srr(), arb_proof()).prop_map(
            |(sip, dip, seq, srr, src_proof)| Message::Rreq(Rreq {
                sip,
                dip,
                seq,
                srr,
                src_proof
            })
        ),
        (arb_addr(), arb_addr(), arb_seq(), arb_rr(), arb_proof()).prop_map(
            |(sip, dip, seq, rr, proof)| Message::Rrep(Rrep {
                sip,
                dip,
                seq,
                rr,
                proof
            })
        ),
        (arb_addr(), arb_addr(), arb_proof()).prop_map(|(iip, i2ip, proof)| Message::Rerr(Rerr {
            iip,
            i2ip,
            proof
        })),
        (arb_addr(), arb_addr(), arb_seq(), arb_rr(), arb_payload()).prop_map(
            |(sip, dip, seq, route, payload)| Message::Data(Data {
                sip,
                dip,
                seq,
                route,
                payload
            })
        ),
        (arb_addr(), arb_addr(), arb_seq(), arb_rr()).prop_map(|(sip, dip, seq, route)| {
            Message::Ack(Ack {
                sip,
                dip,
                seq,
                route,
            })
        }),
        (arb_addr(), arb_dn(), arb_ch(), arb_rr()).prop_map(|(requester, qname, ch, route)| {
            Message::DnsQuery(DnsQuery {
                requester,
                qname,
                ch,
                route,
            })
        }),
        (
            arb_addr(),
            arb_dn(),
            proptest::option::of(arb_addr()),
            arb_sig(),
            arb_rr()
        )
            .prop_map(|(requester, qname, answer, sig, route)| {
                Message::DnsReply(DnsReply {
                    requester,
                    qname,
                    answer,
                    sig,
                    route,
                })
            }),
        (arb_addr(), arb_addr(), arb_seq(), arb_rr()).prop_map(|(sip, dip, seq, rr)| {
            Message::PlainRreq(PlainRreq { sip, dip, seq, rr })
        }),
        (arb_addr(), arb_addr())
            .prop_map(|(iip, i2ip)| Message::PlainRerr(PlainRerr { iip, i2ip })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_message_roundtrips(msg in arb_message()) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, msg.clone());
        prop_assert_eq!(bytes.len(), msg.wire_size());
    }

    #[test]
    fn any_truncation_errors_cleanly(msg in arb_message(), frac in 0.0f64..1.0) {
        let bytes = msg.encode();
        let cut = (bytes.len() as f64 * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes); // must not panic; result is irrelevant
    }

    #[test]
    fn single_byte_flips_never_panic(msg in arb_message(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = msg.encode();
        if !bytes.is_empty() {
            // pos_frac < 1.0, so this covers every index including the
            // final byte (len-1), unlike scaling by len-1.
            let pos = (bytes.len() as f64 * pos_frac) as usize;
            bytes[pos] ^= 1 << bit;
            let _ = Message::decode(&bytes); // decode may fail or yield a different message
        }
    }

    #[test]
    fn rr_reverse_is_involutive(rr in arb_rr()) {
        prop_assert_eq!(rr.reversed().reversed(), rr);
    }

    #[test]
    fn sign_bytes_injective_on_length(rr in arb_rr(), extra in arb_addr()) {
        let mut longer = rr.clone();
        longer.push(extra);
        prop_assert_ne!(rr.sign_bytes(), longer.sign_bytes());
    }
}

proptest! {
    // Exhaustive-prefix truncation is O(len · decode) per case, so it
    // gets a smaller case budget than the spot-check version above.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_strict_prefix_fails_to_decode(msg in arb_message()) {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "decoding succeeded on a {}-byte prefix of a {}-byte {}",
                cut, bytes.len(), msg.kind()
            );
        }
    }
}

proptest! {
    // One case of 512 samples: with 20 uniform arms the chance of any
    // variant being absent is ~20·(19/20)^512 ≈ 1e-10, and the case RNG
    // is deterministic, so this either always passes or always fails.
    #![proptest_config(ProptestConfig::with_cases(1))]

    /// The strategy must be able to produce all 20 variants — otherwise
    /// the roundtrip "over every variant" claim silently narrows when
    /// someone adds a message kind.
    #[test]
    fn all_variants_reachable(msgs in proptest::collection::vec(arb_message(), 512)) {
        use std::collections::BTreeSet;
        let seen: BTreeSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        let expected: BTreeSet<&str> = [
            "AREQ", "AREP", "DREP", "RREQ", "RREP", "CREP", "RERR", "DATA", "ACK", "PROBE",
            "PRACK", "DNSQ", "DNSR", "IPCREQ", "IPCCH", "IPCPRF", "IPCRES", "P-RREQ", "P-RREP",
            "P-RERR",
        ]
        .into_iter()
        .collect();
        prop_assert_eq!(seen, expected);
    }
}
