//! Property tests for the signing-preimage constructors in
//! [`manet_wire::sigdata`].
//!
//! Every signed payload in the protocol is built by exactly one
//! constructor, and the security argument leans on two injectivity
//! properties:
//!
//! 1. **Cross-kind domain separation** — a signature produced for one
//!    message kind must never verify as another, so no two constructors
//!    may emit the same preimage, whatever their fields are.
//! 2. **Within-kind field binding** — two invocations of the same
//!    constructor agree iff every bound field agrees, so a proof cannot
//!    be replayed with any field swapped.

use manet_wire::msg::{Challenge, DomainName, RouteRecord, Seq};
use manet_wire::{sigdata, Ipv6Addr};
use proptest::prelude::*;

fn addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<[u8; 16]>().prop_map(Ipv6Addr)
}

fn challenge() -> impl Strategy<Value = Challenge> {
    any::<u64>().prop_map(Challenge)
}

fn seq() -> impl Strategy<Value = Seq> {
    any::<u64>().prop_map(Seq)
}

fn route() -> impl Strategy<Value = RouteRecord> {
    proptest::collection::vec(addr(), 0..5).prop_map(RouteRecord)
}

fn name() -> impl Strategy<Value = DomainName> {
    // Valid label characters only; "-" is excluded so edge rules
    // (no leading/trailing dash) cannot invalidate the draw.
    proptest::collection::vec(0u8..36, 1..24).prop_map(|chars| {
        let s: String = chars
            .into_iter()
            .map(|c| {
                if c < 26 {
                    (b'a' + c) as char
                } else {
                    (b'0' + c - 26) as char
                }
            })
            .collect();
        DomainName::new(&s).expect("constructed from valid characters")
    })
}

/// Every sigdata constructor applied to one independent draw of fields,
/// labeled by kind.
fn all_preimages(
    a: &Ipv6Addr,
    b: &Ipv6Addr,
    ch: Challenge,
    sq: Seq,
    rr: &RouteRecord,
    dn: &DomainName,
    flag: bool,
) -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("arep", sigdata::arep(a, ch)),
        ("drep", sigdata::drep(dn, ch)),
        ("rreq_src", sigdata::rreq_src(a, sq)),
        ("srr_hop", sigdata::srr_hop(a, sq)),
        ("rrep", sigdata::rrep(a, sq, rr)),
        ("crep_cache_holder", sigdata::crep_cache_holder(a, sq, rr)),
        ("rerr", sigdata::rerr(a, b)),
        ("probe_ack", sigdata::probe_ack(a, sq, b)),
        ("dns_reply_some", sigdata::dns_reply(dn, Some(b), ch)),
        ("dns_reply_none", sigdata::dns_reply(dn, None, ch)),
        ("ip_change", sigdata::ip_change(a, b, ch)),
        ("ip_change_result", sigdata::ip_change_result(dn, flag, ch)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cross-kind: even with every shared field identical across kinds
    /// (the adversary's best case), no two constructors collide.
    #[test]
    fn no_two_kinds_share_a_preimage(
        a in addr(),
        b in addr(),
        ch in challenge(),
        sq in seq(),
        rr in route(),
        dn in name(),
        flag in any::<bool>(),
    ) {
        let all = all_preimages(&a, &b, ch, sq, &rr, &dn, flag);
        for (i, (ki, pi)) in all.iter().enumerate() {
            for (kj, pj) in all.iter().skip(i + 1) {
                prop_assert!(pi != pj, "kinds {ki} and {kj} collided");
            }
        }
    }

    /// Within-kind: preimages agree exactly when the bound fields agree.
    #[test]
    fn same_kind_binds_every_field(
        a1 in addr(), a2 in addr(),
        b1 in addr(), b2 in addr(),
        ch1 in challenge(), ch2 in challenge(),
        sq1 in seq(), sq2 in seq(),
        rr1 in route(), rr2 in route(),
        dn1 in name(), dn2 in name(),
    ) {
        // arep binds (sip, ch)
        prop_assert_eq!(
            sigdata::arep(&a1, ch1) == sigdata::arep(&a2, ch2),
            (a1, ch1) == (a2, ch2)
        );
        // rreq_src / srr_hop bind (ip, seq)
        prop_assert_eq!(
            sigdata::rreq_src(&a1, sq1) == sigdata::rreq_src(&a2, sq2),
            (a1, sq1) == (a2, sq2)
        );
        // rrep binds (sip, seq, rr)
        prop_assert_eq!(
            sigdata::rrep(&a1, sq1, &rr1) == sigdata::rrep(&a2, sq2, &rr2),
            (a1, sq1, &rr1) == (a2, sq2, &rr2)
        );
        // rerr binds the ordered link (iip, i2ip)
        prop_assert_eq!(
            sigdata::rerr(&a1, &b1) == sigdata::rerr(&a2, &b2),
            (a1, b1) == (a2, b2)
        );
        // probe_ack binds (sip, seq, hop)
        prop_assert_eq!(
            sigdata::probe_ack(&a1, sq1, &b1) == sigdata::probe_ack(&a2, sq2, &b2),
            (a1, sq1, b1) == (a2, sq2, b2)
        );
        // dns_reply binds (qname, answer, ch)
        prop_assert_eq!(
            sigdata::dns_reply(&dn1, Some(&b1), ch1) == sigdata::dns_reply(&dn2, Some(&b2), ch2),
            (&dn1, b1, ch1) == (&dn2, b2, ch2)
        );
        // drep binds (dn, ch)
        prop_assert_eq!(
            sigdata::drep(&dn1, ch1) == sigdata::drep(&dn2, ch2),
            (&dn1, ch1) == (&dn2, ch2)
        );
        // ip_change binds the ordered (old, new, ch)
        prop_assert_eq!(
            sigdata::ip_change(&a1, &b1, ch1) == sigdata::ip_change(&a2, &b2, ch2),
            (a1, b1, ch1) == (a2, b2, ch2)
        );
    }

    /// The route-record length prefix keeps `rrep` unambiguous: a route
    /// of n hops can never alias a route of m ≠ n hops whatever the
    /// address bytes are (the classic concat-ambiguity attack).
    #[test]
    fn rrep_routes_of_different_length_never_alias(
        a in addr(),
        sq in seq(),
        rr1 in route(),
        rr2 in route(),
    ) {
        if rr1.len() != rr2.len() {
            prop_assert_ne!(sigdata::rrep(&a, sq, &rr1), sigdata::rrep(&a, sq, &rr2));
        }
    }
}
