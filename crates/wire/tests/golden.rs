//! Golden wire-format vectors: exact byte encodings of representative
//! messages, pinned so any codec change that breaks interoperability
//! with previously captured traffic fails loudly (and intentionally).
//!
//! If a format change is deliberate, update the vectors with the
//! `regenerate` test below (`cargo test -p manet-wire --test golden
//! regenerate -- --ignored --nocapture`).

use manet_wire::*;

fn ip(last: u16) -> Ipv6Addr {
    Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Messages with no key material (fully deterministic content).
fn keyless_samples() -> Vec<(&'static str, Message)> {
    vec![
        (
            "areq_with_name",
            Message::Areq(Areq {
                sip: ip(1),
                seq: Seq(7),
                dn: Some(DomainName::new("host.manet").unwrap()),
                ch: Challenge(0xdead_beef),
                rr: RouteRecord(vec![ip(2), ip(3)]),
            }),
        ),
        (
            "areq_nameless",
            Message::Areq(Areq {
                sip: ip(1),
                seq: Seq(7),
                dn: None,
                ch: Challenge(1),
                rr: RouteRecord::new(),
            }),
        ),
        (
            "data",
            Message::Data(Data {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(100),
                route: RouteRecord(vec![ip(1), ip(2), ip(9)]),
                payload: vec![0x41, 0x42, 0x43],
            }),
        ),
        (
            "ack",
            Message::Ack(Ack {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(100),
                route: RouteRecord(vec![ip(1), ip(9)]),
            }),
        ),
        (
            "probe",
            Message::Probe(Probe {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(5),
                route: RouteRecord(vec![ip(1), ip(9)]),
            }),
        ),
        (
            "plain_rreq",
            Message::PlainRreq(PlainRreq {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(5),
                rr: RouteRecord(vec![ip(4)]),
            }),
        ),
        (
            "plain_rerr",
            Message::PlainRerr(PlainRerr {
                iip: ip(2),
                i2ip: ip(3),
            }),
        ),
    ]
}

/// (name, expected-hex) pairs — regenerate with the ignored test below.
const GOLDEN: &[(&str, &str)] = &[
    (
        "areq_with_name",
        "01fec00000000000000000000000000001000000000000000701000a686f73742e6d616e657400000000deadbeef0002fec00000000000000000000000000002fec00000000000000000000000000003",
    ),
    (
        "areq_nameless",
        "01fec0000000000000000000000000000100000000000000070000000000000000010000",
    ),
    (
        "data",
        "10fec00000000000000000000000000001fec0000000000000000000000000000900000000000000640003fec00000000000000000000000000001fec00000000000000000000000000002fec0000000000000000000000000000900000003414243",
    ),
    (
        "ack",
        "11fec00000000000000000000000000001fec0000000000000000000000000000900000000000000640002fec00000000000000000000000000001fec00000000000000000000000000009",
    ),
    (
        "probe",
        "12fec00000000000000000000000000001fec0000000000000000000000000000900000000000000050002fec00000000000000000000000000001fec00000000000000000000000000009",
    ),
    (
        "plain_rreq",
        "40fec00000000000000000000000000001fec0000000000000000000000000000900000000000000050001fec00000000000000000000000000004",
    ),
    (
        "plain_rerr",
        "42fec00000000000000000000000000002fec00000000000000000000000000003",
    ),
];

#[test]
fn encodings_match_golden_vectors() {
    let samples = keyless_samples();
    assert_eq!(samples.len(), GOLDEN.len(), "vector count drifted");
    for ((name, msg), (gname, ghex)) in samples.iter().zip(GOLDEN) {
        assert_eq!(name, gname, "sample order drifted");
        assert_eq!(
            &hex(&msg.encode()),
            ghex,
            "wire format of {name} changed — if intentional, regenerate the vectors"
        );
    }
}

#[test]
fn golden_vectors_decode_back() {
    for (name, ghex) in GOLDEN {
        let bytes: Vec<u8> = (0..ghex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&ghex[i..i + 2], 16).expect("hex"))
            .collect();
        let msg = Message::decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(hex(&msg.encode()), *ghex, "{name} not canonical");
    }
}

/// Prints fresh vectors; run manually after an intentional format change.
#[test]
#[ignore]
fn regenerate() {
    for (name, msg) in keyless_samples() {
        println!("(\n    \"{name}\",\n    \"{}\",\n),", hex(&msg.encode()));
    }
}
