//! Binary codec for every [`Message`].
//!
//! One tag byte, then fixed fields, then length-prefixed variable fields
//! (u16 lengths for keys/signatures/routes, u32 for data payloads). The
//! decoder is strict: truncation, unknown tags, malformed keys/names, and
//! trailing bytes are all errors — every decode site doubles as a fuzzing
//! surface for the failure-injection tests.

use crate::addr::Ipv6Addr;
use crate::msg::*;
use bytes::BufMut;
use manet_crypto::{PublicKey, Signature};
use std::fmt;

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the message did.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Embedded public key failed validation.
    BadKey,
    /// Embedded domain name failed validation.
    BadDomainName,
    /// Bytes left over after a complete message.
    TrailingBytes,
    /// A length prefix exceeds sane bounds.
    LengthOverflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::BadKey => write!(f, "malformed public key"),
            CodecError::BadDomainName => write!(f, "malformed domain name"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after message"),
            CodecError::LengthOverflow => write!(f, "length prefix out of bounds"),
        }
    }
}

impl std::error::Error for CodecError {}

mod tag {
    pub const AREQ: u8 = 0x01;
    pub const AREP: u8 = 0x02;
    pub const DREP: u8 = 0x03;
    pub const RREQ: u8 = 0x04;
    pub const RREP: u8 = 0x05;
    pub const CREP: u8 = 0x06;
    pub const RERR: u8 = 0x07;
    pub const DATA: u8 = 0x10;
    pub const ACK: u8 = 0x11;
    pub const PROBE: u8 = 0x12;
    pub const PROBE_ACK: u8 = 0x13;
    pub const DNSQ: u8 = 0x20;
    pub const DNSR: u8 = 0x21;
    pub const IPC_REQ: u8 = 0x30;
    pub const IPC_CH: u8 = 0x31;
    pub const IPC_PRF: u8 = 0x32;
    pub const IPC_RES: u8 = 0x33;
    pub const P_RREQ: u8 = 0x40;
    pub const P_RREP: u8 = 0x41;
    pub const P_RERR: u8 = 0x42;
}

/// Maximum hops in a route record the decoder will accept.
const MAX_ROUTE_LEN: usize = 256;
/// Maximum data payload the decoder will accept.
const MAX_PAYLOAD: usize = 64 * 1024;

// --- checked reader ---------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn addr(&mut self) -> Result<Ipv6Addr, CodecError> {
        let b = self.take(16)?;
        Ok(Ipv6Addr(b.try_into().expect("16 bytes")))
    }

    fn seq(&mut self) -> Result<Seq, CodecError> {
        Ok(Seq(self.u64()?))
    }

    fn challenge(&mut self) -> Result<Challenge, CodecError> {
        Ok(Challenge(self.u64()?))
    }

    fn blob16(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u16()? as usize;
        self.take(len)
    }

    fn sig(&mut self) -> Result<Signature, CodecError> {
        Ok(Signature::from_bytes(self.blob16()?))
    }

    fn pk(&mut self) -> Result<PublicKey, CodecError> {
        PublicKey::from_bytes(self.blob16()?).map_err(|_| CodecError::BadKey)
    }

    fn proof(&mut self) -> Result<IdentityProof, CodecError> {
        let pk = self.pk()?;
        let rn = self.u64()?;
        let sig = self.sig()?;
        Ok(IdentityProof { pk, rn, sig })
    }

    fn rr(&mut self) -> Result<RouteRecord, CodecError> {
        let n = self.u16()? as usize;
        if n > MAX_ROUTE_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.addr()?);
        }
        Ok(RouteRecord(v))
    }

    fn srr(&mut self) -> Result<SecureRouteRecord, CodecError> {
        let n = self.u16()? as usize;
        if n > MAX_ROUTE_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let ip = self.addr()?;
            let proof = self.proof()?;
            v.push(SrrEntry { ip, proof });
        }
        Ok(SecureRouteRecord(v))
    }

    fn dn(&mut self) -> Result<DomainName, CodecError> {
        let raw = self.blob16()?;
        let s = core::str::from_utf8(raw).map_err(|_| CodecError::BadDomainName)?;
        DomainName::new(s).map_err(|_| CodecError::BadDomainName)
    }

    fn dn_opt(&mut self) -> Result<Option<DomainName>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.dn()?)),
            _ => Err(CodecError::BadDomainName),
        }
    }

    fn addr_opt(&mut self) -> Result<Option<Ipv6Addr>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.addr()?)),
            _ => Err(CodecError::LengthOverflow),
        }
    }

    fn payload(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_PAYLOAD {
            return Err(CodecError::LengthOverflow);
        }
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

// --- writers ----------------------------------------------------------------

fn put_blob16(out: &mut Vec<u8>, blob: &[u8]) {
    debug_assert!(blob.len() <= u16::MAX as usize);
    out.put_u16(blob.len() as u16);
    out.put_slice(blob);
}

fn put_sig(out: &mut Vec<u8>, sig: &Signature) {
    put_blob16(out, &sig.to_bytes());
}

fn put_pk(out: &mut Vec<u8>, pk: &PublicKey) {
    put_blob16(out, &pk.to_bytes());
}

fn put_proof(out: &mut Vec<u8>, p: &IdentityProof) {
    put_pk(out, &p.pk);
    out.put_u64(p.rn);
    put_sig(out, &p.sig);
}

fn put_rr(out: &mut Vec<u8>, rr: &RouteRecord) {
    out.put_u16(rr.0.len() as u16);
    for a in &rr.0 {
        out.put_slice(&a.0);
    }
}

fn put_srr(out: &mut Vec<u8>, srr: &SecureRouteRecord) {
    out.put_u16(srr.0.len() as u16);
    for e in &srr.0 {
        out.put_slice(&e.ip.0);
        put_proof(out, &e.proof);
    }
}

fn put_dn(out: &mut Vec<u8>, dn: &DomainName) {
    put_blob16(out, dn.as_str().as_bytes());
}

fn put_dn_opt(out: &mut Vec<u8>, dn: &Option<DomainName>) {
    match dn {
        None => out.put_u8(0),
        Some(d) => {
            out.put_u8(1);
            put_dn(out, d);
        }
    }
}

fn put_addr_opt(out: &mut Vec<u8>, a: &Option<Ipv6Addr>) {
    match a {
        None => out.put_u8(0),
        Some(a) => {
            out.put_u8(1);
            out.put_slice(&a.0);
        }
    }
}

/// The fixed fields of a [`PlainRreq`], read without allocating — see
/// [`Message::peek_plain_rreq`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlainRreqHeader {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    pub seq: Seq,
}

impl Message {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Serialize, appending to a caller-owned buffer — the
    /// allocation-free variant for hot transmit paths feeding recycled
    /// frame buffers.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Message::Areq(m) => {
                out.put_u8(tag::AREQ);
                out.put_slice(&m.sip.0);
                out.put_u64(m.seq.0);
                put_dn_opt(out, &m.dn);
                out.put_u64(m.ch.0);
                put_rr(out, &m.rr);
            }
            Message::Arep(m) => {
                out.put_u8(tag::AREP);
                out.put_slice(&m.sip.0);
                put_rr(out, &m.rr);
                put_proof(out, &m.proof);
            }
            Message::Drep(m) => {
                out.put_u8(tag::DREP);
                out.put_slice(&m.sip.0);
                put_rr(out, &m.rr);
                put_sig(out, &m.sig);
            }
            Message::Rreq(m) => {
                out.put_u8(tag::RREQ);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_srr(out, &m.srr);
                put_proof(out, &m.src_proof);
            }
            Message::Rrep(m) => {
                out.put_u8(tag::RREP);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_rr(out, &m.rr);
                put_proof(out, &m.proof);
            }
            Message::Crep(m) => {
                out.put_u8(tag::CREP);
                out.put_slice(&m.s2ip.0);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq2.0);
                put_rr(out, &m.rr_s2_to_s);
                put_proof(out, &m.s_proof);
                out.put_u64(m.orig_seq.0);
                put_rr(out, &m.rr_s_to_d);
                put_proof(out, &m.d_proof);
            }
            Message::Rerr(m) => {
                out.put_u8(tag::RERR);
                out.put_slice(&m.iip.0);
                out.put_slice(&m.i2ip.0);
                put_proof(out, &m.proof);
            }
            Message::Data(m) => {
                out.put_u8(tag::DATA);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_rr(out, &m.route);
                out.put_u32(m.payload.len() as u32);
                out.put_slice(&m.payload);
            }
            Message::Ack(m) => {
                out.put_u8(tag::ACK);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_rr(out, &m.route);
            }
            Message::Probe(m) => {
                out.put_u8(tag::PROBE);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_rr(out, &m.route);
            }
            Message::ProbeAck(m) => {
                out.put_u8(tag::PROBE_ACK);
                out.put_slice(&m.sip.0);
                out.put_u64(m.probe_seq.0);
                out.put_slice(&m.hop.0);
                put_proof(out, &m.proof);
            }
            Message::DnsQuery(m) => {
                out.put_u8(tag::DNSQ);
                out.put_slice(&m.requester.0);
                put_dn(out, &m.qname);
                out.put_u64(m.ch.0);
                put_rr(out, &m.route);
            }
            Message::DnsReply(m) => {
                out.put_u8(tag::DNSR);
                out.put_slice(&m.requester.0);
                put_dn(out, &m.qname);
                put_addr_opt(out, &m.answer);
                put_sig(out, &m.sig);
                put_rr(out, &m.route);
            }
            Message::IpChangeRequest(m) => {
                out.put_u8(tag::IPC_REQ);
                put_dn(out, &m.dn);
                out.put_slice(&m.old_ip.0);
                out.put_slice(&m.new_ip.0);
                put_rr(out, &m.route);
            }
            Message::IpChangeChallenge(m) => {
                out.put_u8(tag::IPC_CH);
                put_dn(out, &m.dn);
                out.put_u64(m.ch.0);
                put_rr(out, &m.route);
            }
            Message::IpChangeProof(m) => {
                out.put_u8(tag::IPC_PRF);
                put_dn(out, &m.dn);
                out.put_slice(&m.old_ip.0);
                out.put_slice(&m.new_ip.0);
                out.put_u64(m.old_rn);
                out.put_u64(m.new_rn);
                put_pk(out, &m.pk);
                put_sig(out, &m.sig);
                put_rr(out, &m.route);
            }
            Message::IpChangeResult(m) => {
                out.put_u8(tag::IPC_RES);
                put_dn(out, &m.dn);
                out.put_u8(m.accepted as u8);
                put_sig(out, &m.sig);
                put_rr(out, &m.route);
            }
            Message::PlainRreq(m) => {
                out.put_u8(tag::P_RREQ);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_rr(out, &m.rr);
            }
            Message::PlainRrep(m) => {
                out.put_u8(tag::P_RREP);
                out.put_slice(&m.sip.0);
                out.put_slice(&m.dip.0);
                out.put_u64(m.seq.0);
                put_rr(out, &m.rr);
            }
            Message::PlainRerr(m) => {
                out.put_u8(tag::P_RERR);
                out.put_slice(&m.iip.0);
                out.put_slice(&m.i2ip.0);
            }
        }
    }

    /// Size of the encoded message in bytes; the unit of the control
    /// overhead experiments (T1, E2).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// If `buf` is a complete, well-formed [`PlainRreq`] encoding,
    /// return its fixed fields without allocating the route record.
    /// Validates the full layout — length prefix, bounds, trailing
    /// bytes — exactly as strictly as [`Message::decode`], so a `Some`
    /// here guarantees `decode` would succeed and a `None` means
    /// "not a PlainRreq or malformed; take the full decode path".
    ///
    /// This is the flood hot path: in a dense RREQ flood most
    /// receptions are duplicates whose route record is never looked at.
    pub fn peek_plain_rreq(buf: &[u8]) -> Option<PlainRreqHeader> {
        let mut r = Reader::new(buf);
        if r.u8().ok()? != tag::P_RREQ {
            return None;
        }
        let sip = r.addr().ok()?;
        let dip = r.addr().ok()?;
        let seq = r.seq().ok()?;
        let n = r.u16().ok()? as usize;
        if n > MAX_ROUTE_LEN {
            return None;
        }
        r.take(n * 16).ok()?;
        r.finish().ok()?;
        Some(PlainRreqHeader { sip, dip, seq })
    }

    /// Can the message starting at `buf` (first byte: the kind tag)
    /// carry signature material its *receiver* verifies? Data, acks,
    /// probes, AREQ floods, queries/challenges, and the plain-DSR kinds
    /// are never signature-checked on reception, so a speculative
    /// verification pass can skip decoding them — the bulk of traffic
    /// at scale. Unknown tags and empty buffers return `false`: the
    /// strict decode would reject them before any verification anyway.
    pub fn peek_may_verify(buf: &[u8]) -> bool {
        matches!(
            buf.first(),
            Some(
                &(tag::AREP
                    | tag::DREP
                    | tag::RREQ
                    | tag::RREP
                    | tag::CREP
                    | tag::RERR
                    | tag::PROBE_ACK
                    | tag::DNSR
                    | tag::IPC_PRF
                    | tag::IPC_RES)
            )
        )
    }

    /// Strict decode: consumes the whole buffer or fails.
    pub fn decode(buf: &[u8]) -> Result<Message, CodecError> {
        let mut r = Reader::new(buf);
        let t = r.u8()?;
        let msg = match t {
            tag::AREQ => Message::Areq(Areq {
                sip: r.addr()?,
                seq: r.seq()?,
                dn: r.dn_opt()?,
                ch: r.challenge()?,
                rr: r.rr()?,
            }),
            tag::AREP => Message::Arep(Arep {
                sip: r.addr()?,
                rr: r.rr()?,
                proof: r.proof()?,
            }),
            tag::DREP => Message::Drep(Drep {
                sip: r.addr()?,
                rr: r.rr()?,
                sig: r.sig()?,
            }),
            tag::RREQ => Message::Rreq(Rreq {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                srr: r.srr()?,
                src_proof: r.proof()?,
            }),
            tag::RREP => Message::Rrep(Rrep {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                rr: r.rr()?,
                proof: r.proof()?,
            }),
            tag::CREP => Message::Crep(Crep {
                s2ip: r.addr()?,
                sip: r.addr()?,
                dip: r.addr()?,
                seq2: r.seq()?,
                rr_s2_to_s: r.rr()?,
                s_proof: r.proof()?,
                orig_seq: r.seq()?,
                rr_s_to_d: r.rr()?,
                d_proof: r.proof()?,
            }),
            tag::RERR => Message::Rerr(Rerr {
                iip: r.addr()?,
                i2ip: r.addr()?,
                proof: r.proof()?,
            }),
            tag::DATA => Message::Data(Data {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                route: r.rr()?,
                payload: r.payload()?,
            }),
            tag::ACK => Message::Ack(Ack {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                route: r.rr()?,
            }),
            tag::PROBE => Message::Probe(Probe {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                route: r.rr()?,
            }),
            tag::PROBE_ACK => Message::ProbeAck(ProbeAck {
                sip: r.addr()?,
                probe_seq: r.seq()?,
                hop: r.addr()?,
                proof: r.proof()?,
            }),
            tag::DNSQ => Message::DnsQuery(DnsQuery {
                requester: r.addr()?,
                qname: r.dn()?,
                ch: r.challenge()?,
                route: r.rr()?,
            }),
            tag::DNSR => Message::DnsReply(DnsReply {
                requester: r.addr()?,
                qname: r.dn()?,
                answer: r.addr_opt()?,
                sig: r.sig()?,
                route: r.rr()?,
            }),
            tag::IPC_REQ => Message::IpChangeRequest(IpChangeRequest {
                dn: r.dn()?,
                old_ip: r.addr()?,
                new_ip: r.addr()?,
                route: r.rr()?,
            }),
            tag::IPC_CH => Message::IpChangeChallenge(IpChangeChallenge {
                dn: r.dn()?,
                ch: r.challenge()?,
                route: r.rr()?,
            }),
            tag::IPC_PRF => Message::IpChangeProof(IpChangeProof {
                dn: r.dn()?,
                old_ip: r.addr()?,
                new_ip: r.addr()?,
                old_rn: r.u64()?,
                new_rn: r.u64()?,
                pk: r.pk()?,
                sig: r.sig()?,
                route: r.rr()?,
            }),
            tag::IPC_RES => Message::IpChangeResult(IpChangeResult {
                dn: r.dn()?,
                accepted: r.u8()? != 0,
                sig: r.sig()?,
                route: r.rr()?,
            }),
            tag::P_RREQ => Message::PlainRreq(PlainRreq {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                rr: r.rr()?,
            }),
            tag::P_RREP => Message::PlainRrep(PlainRrep {
                sip: r.addr()?,
                dip: r.addr()?,
                seq: r.seq()?,
                rr: r.rr()?,
            }),
            tag::P_RERR => Message::PlainRerr(PlainRerr {
                iip: r.addr()?,
                i2ip: r.addr()?,
            }),
            other => return Err(CodecError::BadTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    fn proof() -> IdentityProof {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let kp = manet_crypto::KeyPair::generate(512, &mut rng);
        IdentityProof {
            pk: kp.public().clone(),
            rn: 42,
            sig: kp.sign(b"test"),
        }
    }

    fn sample_messages() -> Vec<Message> {
        let p = proof();
        let dn = DomainName::new("node1.manet").unwrap();
        let rr = RouteRecord(vec![ip(1), ip(2), ip(3)]);
        let srr = SecureRouteRecord(vec![
            SrrEntry {
                ip: ip(2),
                proof: p.clone(),
            },
            SrrEntry {
                ip: ip(3),
                proof: p.clone(),
            },
        ]);
        vec![
            Message::Areq(Areq {
                sip: ip(1),
                seq: Seq(9),
                dn: Some(dn.clone()),
                ch: Challenge(0xdead),
                rr: rr.clone(),
            }),
            Message::Areq(Areq {
                sip: ip(1),
                seq: Seq(9),
                dn: None,
                ch: Challenge(1),
                rr: RouteRecord::new(),
            }),
            Message::Arep(Arep {
                sip: ip(1),
                rr: rr.clone(),
                proof: p.clone(),
            }),
            Message::Drep(Drep {
                sip: ip(1),
                rr: rr.clone(),
                sig: p.sig.clone(),
            }),
            Message::Rreq(Rreq {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(5),
                srr,
                src_proof: p.clone(),
            }),
            Message::Rrep(Rrep {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(5),
                rr: rr.clone(),
                proof: p.clone(),
            }),
            Message::Crep(Crep {
                s2ip: ip(7),
                sip: ip(1),
                dip: ip(9),
                seq2: Seq(8),
                rr_s2_to_s: rr.clone(),
                s_proof: p.clone(),
                orig_seq: Seq(5),
                rr_s_to_d: rr.reversed(),
                d_proof: p.clone(),
            }),
            Message::Rerr(Rerr {
                iip: ip(2),
                i2ip: ip(3),
                proof: p.clone(),
            }),
            Message::Data(Data {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(100),
                route: rr.clone(),
                payload: vec![0xab; 512],
            }),
            Message::Ack(Ack {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(100),
                route: rr.clone(),
            }),
            Message::Probe(Probe {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(101),
                route: rr.clone(),
            }),
            Message::ProbeAck(ProbeAck {
                sip: ip(1),
                probe_seq: Seq(101),
                hop: ip(2),
                proof: p.clone(),
            }),
            Message::DnsQuery(DnsQuery {
                requester: ip(1),
                qname: dn.clone(),
                ch: Challenge(77),
                route: rr.clone(),
            }),
            Message::DnsReply(DnsReply {
                requester: ip(1),
                qname: dn.clone(),
                answer: Some(ip(9)),
                sig: p.sig.clone(),
                route: rr.clone(),
            }),
            Message::DnsReply(DnsReply {
                requester: ip(1),
                qname: dn.clone(),
                answer: None,
                sig: p.sig.clone(),
                route: RouteRecord::new(),
            }),
            Message::IpChangeRequest(IpChangeRequest {
                dn: dn.clone(),
                old_ip: ip(1),
                new_ip: ip(2),
                route: rr.clone(),
            }),
            Message::IpChangeChallenge(IpChangeChallenge {
                dn: dn.clone(),
                ch: Challenge(3),
                route: rr.clone(),
            }),
            Message::IpChangeProof(IpChangeProof {
                dn: dn.clone(),
                old_ip: ip(1),
                new_ip: ip(2),
                old_rn: 4,
                new_rn: 5,
                pk: p.pk.clone(),
                sig: p.sig.clone(),
                route: rr.clone(),
            }),
            Message::IpChangeResult(IpChangeResult {
                dn: dn.clone(),
                accepted: true,
                sig: p.sig.clone(),
                route: rr.clone(),
            }),
            Message::PlainRreq(PlainRreq {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(5),
                rr: rr.clone(),
            }),
            Message::PlainRrep(PlainRrep {
                sip: ip(1),
                dip: ip(9),
                seq: Seq(5),
                rr: rr.clone(),
            }),
            Message::PlainRerr(PlainRerr {
                iip: ip(2),
                i2ip: ip(3),
            }),
        ]
    }

    /// `peek_may_verify` must say yes for exactly the kinds whose
    /// receiver checks a signature — the set the secure node's prefetch
    /// pass handles. A false negative would silently starve batch
    /// verification for that kind (correct but unamortized), so the
    /// set is pinned against every sample message.
    #[test]
    fn verify_peek_matches_the_receiver_checked_kinds() {
        for msg in sample_messages() {
            let expected = matches!(
                msg,
                Message::Arep(_)
                    | Message::Drep(_)
                    | Message::Rreq(_)
                    | Message::Rrep(_)
                    | Message::Crep(_)
                    | Message::Rerr(_)
                    | Message::ProbeAck(_)
                    | Message::DnsReply(_)
                    | Message::IpChangeProof(_)
                    | Message::IpChangeResult(_)
            );
            assert_eq!(
                Message::peek_may_verify(&msg.encode()),
                expected,
                "{}",
                msg.kind()
            );
        }
        assert!(!Message::peek_may_verify(&[]));
        assert!(!Message::peek_may_verify(&[0xff]));
    }

    #[test]
    fn all_messages_roundtrip() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let back =
                Message::decode(&bytes).unwrap_or_else(|e| panic!("{} failed: {e}", msg.kind()));
            assert_eq!(back, msg, "{} roundtrip", msg.kind());
            assert_eq!(msg.wire_size(), bytes.len());
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    Message::decode(&bytes[..cut]).is_err(),
                    "{} decoded from {cut}/{} bytes",
                    msg.kind(),
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        for msg in sample_messages() {
            let mut bytes = msg.encode();
            bytes.push(0);
            assert_eq!(Message::decode(&bytes), Err(CodecError::TrailingBytes));
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Message::decode(&[0xff]), Err(CodecError::BadTag(0xff)));
        assert_eq!(Message::decode(&[0x00]), Err(CodecError::BadTag(0x00)));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(Message::decode(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn oversized_route_rejected() {
        // Hand-build a plain RREQ claiming 300 route entries.
        let mut bytes = vec![tag::P_RREQ];
        bytes.extend_from_slice(&[0u8; 16]); // sip
        bytes.extend_from_slice(&[0u8; 16]); // dip
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&300u16.to_be_bytes());
        bytes.extend_from_slice(&vec![0u8; 300 * 16]);
        assert_eq!(Message::decode(&bytes), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn bad_domain_name_on_wire_rejected() {
        let dn = DomainName::new("ok.name").unwrap();
        let msg = Message::DnsQuery(DnsQuery {
            requester: ip(1),
            qname: dn,
            ch: Challenge(0),
            route: RouteRecord::new(),
        });
        let mut bytes = msg.encode();
        // Corrupt the first character of the name ('o' -> '!').
        let pos = bytes.iter().position(|&b| b == b'o').unwrap();
        bytes[pos] = b'!';
        assert_eq!(Message::decode(&bytes), Err(CodecError::BadDomainName));
    }

    #[test]
    fn secure_messages_cost_more_than_plain() {
        // The T1 exhibit's core fact: security adds signature + key bytes.
        let p = proof();
        let rr = RouteRecord(vec![ip(1), ip(2), ip(3)]);
        let secure = Message::Rrep(Rrep {
            sip: ip(1),
            dip: ip(9),
            seq: Seq(5),
            rr: rr.clone(),
            proof: p,
        });
        let plain = Message::PlainRrep(PlainRrep {
            sip: ip(1),
            dip: ip(9),
            seq: Seq(5),
            rr,
        });
        assert!(secure.wire_size() > plain.wire_size() + 64);
    }
}
