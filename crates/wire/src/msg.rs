//! Control messages — Table 1 of the paper, plus the auxiliary traffic the
//! protocol needs to actually run (data/ack, DNS resolution, IP change,
//! and the plain-DSR baseline messages used for comparison).
//!
//! Naming follows Table 2: `XIP` an address, `XPK`/`XSK` a key pair, `Xrn`
//! the CGA modifier, `DN` a domain name, `ch` a challenge, `seq` a
//! sequence number, `RR` a route record, `SRR` a secure route record, and
//! `[msg]XSK` a signature by X ([`manet_crypto::Signature`]).

use crate::addr::Ipv6Addr;
use manet_crypto::{PublicKey, Signature};
use std::fmt;

/// A per-initiator unique sequence number (Table 2: `seq`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Seq(pub u64);

/// A random challenge (Table 2: `ch`). Fresh per AREQ; binding it into
/// the signed reply is what stops replay attacks (Section 3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Challenge(pub u64);

/// A validated domain name (Table 2: `DN`).
///
/// Lowercase LDH labels separated by dots, at most 255 bytes total.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName(String);

/// Errors constructing a [`DomainName`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainNameError {
    Empty,
    TooLong,
    BadCharacter,
    BadLabel,
}

impl DomainName {
    /// Validate and construct.
    pub fn new(s: &str) -> Result<Self, DomainNameError> {
        if s.is_empty() {
            return Err(DomainNameError::Empty);
        }
        if s.len() > 255 {
            return Err(DomainNameError::TooLong);
        }
        for label in s.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(DomainNameError::BadLabel);
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainNameError::BadLabel);
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                return Err(DomainNameError::BadCharacter);
            }
        }
        Ok(DomainName(s.to_owned()))
    }

    /// The textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DomainName({})", self.0)
    }
}

/// A route record (Table 2: `RR`): the addresses traversed so far, source
/// end first.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RouteRecord(pub Vec<Ipv6Addr>);

impl RouteRecord {
    pub fn new() -> Self {
        RouteRecord(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn contains(&self, a: &Ipv6Addr) -> bool {
        self.0.contains(a)
    }

    pub fn push(&mut self, a: Ipv6Addr) {
        self.0.push(a);
    }

    /// The record reversed (reply path).
    pub fn reversed(&self) -> RouteRecord {
        RouteRecord(self.0.iter().rev().copied().collect())
    }

    /// Canonical bytes for signing (`[… RR]XSK` payloads).
    pub fn sign_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.0.len() * 16);
        out.extend_from_slice(&(self.0.len() as u16).to_be_bytes());
        for a in &self.0 {
            out.extend_from_slice(&a.0);
        }
        out
    }
}

/// The identity material every secure message carries for its signer:
/// the public key `XPK`, the CGA modifier `Xrn`, and a signature.
///
/// Verifying a proof means (1) checking `H(XPK, Xrn)` matches the
/// claimed address's interface ID and (2) checking the signature under
/// `XPK` — the two checks Sections 3.1/3.3 repeat for every message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdentityProof {
    pub pk: PublicKey,
    pub rn: u64,
    pub sig: Signature,
}

/// One entry of the secure route record (Table 2: `SRR`):
/// `([IIP, seq]ISK, IPK, Irn)` keyed by the hop's address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SrrEntry {
    pub ip: Ipv6Addr,
    pub proof: IdentityProof,
}

/// The secure route record: per-hop identity proofs, source side first.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SecureRouteRecord(pub Vec<SrrEntry>);

impl SecureRouteRecord {
    pub fn new() -> Self {
        SecureRouteRecord(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn contains_ip(&self, a: &Ipv6Addr) -> bool {
        self.0.iter().any(|e| e.ip == *a)
    }

    /// Drop the proofs, keeping only the traversed addresses (the `RR`
    /// that D extracts from the SRR when building the RREP).
    pub fn to_route_record(&self) -> RouteRecord {
        RouteRecord(self.0.iter().map(|e| e.ip).collect())
    }
}

// ---------------------------------------------------------------------------
// Table 1 messages
// ---------------------------------------------------------------------------

/// `AREQ(SIP, seq, DN, ch, RR)` — address request, flooded during secure
/// DAD (Section 3.1). `dn` is empty when no name registration is wanted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Areq {
    pub sip: Ipv6Addr,
    pub seq: Seq,
    pub dn: Option<DomainName>,
    pub ch: Challenge,
    pub rr: RouteRecord,
}

/// `AREP(SIP, RR, [SIP, ch]RSK, RPK, Rrn)` — address reply unicast by the
/// collision holder R back along `RR` (and to the DNS as a warning).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Arep {
    pub sip: Ipv6Addr,
    pub rr: RouteRecord,
    /// R's proof: signature over `[SIP, ch]`, plus `RPK`, `Rrn`.
    pub proof: IdentityProof,
}

/// `DREP(SIP, RR, [DN, ch]NSK)` — DNS server reply on a duplicate domain
/// name. Verified against the globally known DNS public key, so no
/// key/rn material travels with it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Drep {
    pub sip: Ipv6Addr,
    pub rr: RouteRecord,
    /// `[DN, ch]NSK` — the DNS signature over the rejected name + challenge.
    pub sig: Signature,
}

/// `RREQ(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)` — secure route
/// request (Section 3.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rreq {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    pub seq: Seq,
    pub srr: SecureRouteRecord,
    /// S's proof: signature over `[SIP, seq]`, plus `SPK`, `Srn`.
    pub src_proof: IdentityProof,
}

/// `RREP(SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)` — route reply unicast by
/// D back along the reverse of `RR` (which is carried in the source-routed
/// header, hence a field here).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rrep {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    /// The original request's sequence number (covered by the signature).
    pub seq: Seq,
    /// The discovered route S→…→D extracted from the SRR.
    pub rr: RouteRecord,
    /// D's proof: signature over `[SIP, seq, RR]`, plus `DPK`, `Drn`.
    pub proof: IdentityProof,
}

/// `CREP(S'IP, SIP, DIP, RR_{S'→S}, [S'IP, seq', RR_{S'→S}]SSK, SPK, Srn,
/// [SIP, seq, RR_{S→D}]DSK, DPK, Drn)` — cached route reply: S answers
/// S'’s request for D by stitching the reverse path to itself onto its
/// cached, destination-signed route to D (Section 3.3, Figure 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Crep {
    /// The new requester S'.
    pub s2ip: Ipv6Addr,
    /// The cache holder S.
    pub sip: Ipv6Addr,
    /// The destination D.
    pub dip: Ipv6Addr,
    /// S'’s sequence number (from its pending RREQ).
    pub seq2: Seq,
    /// Route S'→…→S, taken from the RREQ's SRR.
    pub rr_s2_to_s: RouteRecord,
    /// S's proof: signature over `[S'IP, seq', RR_{S'→S}]`, plus SPK, Srn.
    pub s_proof: IdentityProof,
    /// The sequence number of S's original discovery (covered by D's sig).
    pub orig_seq: Seq,
    /// Cached route S→…→D.
    pub rr_s_to_d: RouteRecord,
    /// D's original proof: signature over `[SIP, seq, RR_{S→D}]`, plus DPK, Drn.
    pub d_proof: IdentityProof,
}

/// `RERR(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)` — route error: hop I
/// reports its link to the next hop I' broken (Section 3.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rerr {
    pub iip: Ipv6Addr,
    pub i2ip: Ipv6Addr,
    /// I's proof: signature over `[IIP, I'IP]`, plus IPK, Irn.
    pub proof: IdentityProof,
}

// ---------------------------------------------------------------------------
// Auxiliary traffic (not in Table 1 but required to operate the system)
// ---------------------------------------------------------------------------

/// A source-routed data packet. Credits are granted when the matching
/// [`Ack`] comes back (Section 3.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Data {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    pub seq: Seq,
    /// Full source route S→…→D, including both endpoints.
    pub route: RouteRecord,
    pub payload: Vec<u8>,
}

/// End-to-end acknowledgement for a [`Data`] packet, returned along the
/// reverse route; drives the credit manager.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ack {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    /// Sequence number of the acknowledged data packet.
    pub seq: Seq,
    pub route: RouteRecord,
}

/// Route probe (Section 3.4: "the source host can traverse the route
/// and test the integrality of each host"). Source-routed along the
/// suspect route; every hop that forwards it returns a signed
/// [`ProbeAck`], letting the source localize where packets die.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Probe {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    pub seq: Seq,
    /// The probed route S→…→D (both endpoints included).
    pub route: RouteRecord,
}

/// Per-hop acknowledgement of a [`Probe`]: hop I proves it saw (and
/// forwarded) probe `seq` with `[SIP, seq, IIP]ISK`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeAck {
    pub sip: Ipv6Addr,
    pub probe_seq: Seq,
    /// The acknowledging hop.
    pub hop: Ipv6Addr,
    pub proof: IdentityProof,
}

/// Secure DNS resolution request (Section 3.2): "a host can securely
/// inquire the IP address of the web server".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DnsQuery {
    pub requester: Ipv6Addr,
    pub qname: DomainName,
    pub ch: Challenge,
    pub route: RouteRecord,
}

/// Signed DNS resolution answer. `answer` is `None` for NXDOMAIN.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DnsReply {
    pub requester: Ipv6Addr,
    pub qname: DomainName,
    pub answer: Option<Ipv6Addr>,
    /// `[qname, answer, ch]NSK` — binds the fresh challenge, so replaying
    /// an old reply fails.
    pub sig: Signature,
    pub route: RouteRecord,
}

/// Section 3.2 IP-change, step 1: host X asks the DNS to move its name to
/// a new address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IpChangeRequest {
    pub dn: DomainName,
    pub old_ip: Ipv6Addr,
    pub new_ip: Ipv6Addr,
    pub route: RouteRecord,
}

/// Step 2: the DNS challenges the requester.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IpChangeChallenge {
    pub dn: DomainName,
    pub ch: Challenge,
    pub route: RouteRecord,
}

/// Step 3: X proves ownership of both addresses — old/new `rn`, the key,
/// and `[XIP, X'IP, ch]XSK` (the paper's exact reply contents).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IpChangeProof {
    pub dn: DomainName,
    pub old_ip: Ipv6Addr,
    pub new_ip: Ipv6Addr,
    pub old_rn: u64,
    pub new_rn: u64,
    pub pk: PublicKey,
    pub sig: Signature,
    pub route: RouteRecord,
}

/// Step 4: signed outcome from the DNS.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IpChangeResult {
    pub dn: DomainName,
    pub accepted: bool,
    /// `[dn, accepted, ch]NSK`.
    pub sig: Signature,
    pub route: RouteRecord,
}

// ---------------------------------------------------------------------------
// Plain DSR baseline (no security) — the comparison point for E2/E3
// ---------------------------------------------------------------------------

/// Plain DSR route request: `RREQ(SIP, DIP, seq, RR)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlainRreq {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    pub seq: Seq,
    pub rr: RouteRecord,
}

/// Plain DSR route reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlainRrep {
    pub sip: Ipv6Addr,
    pub dip: Ipv6Addr,
    pub seq: Seq,
    pub rr: RouteRecord,
}

/// Plain DSR route error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlainRerr {
    pub iip: Ipv6Addr,
    pub i2ip: Ipv6Addr,
}

/// Every packet the simulator can carry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    Areq(Areq),
    Arep(Arep),
    Drep(Drep),
    Rreq(Rreq),
    Rrep(Rrep),
    Crep(Crep),
    Rerr(Rerr),
    Data(Data),
    Ack(Ack),
    Probe(Probe),
    ProbeAck(ProbeAck),
    DnsQuery(DnsQuery),
    DnsReply(DnsReply),
    IpChangeRequest(IpChangeRequest),
    IpChangeChallenge(IpChangeChallenge),
    IpChangeProof(IpChangeProof),
    IpChangeResult(IpChangeResult),
    PlainRreq(PlainRreq),
    PlainRrep(PlainRrep),
    PlainRerr(PlainRerr),
}

impl Message {
    /// Short kind name (Table 1 "Type" column) for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Areq(_) => "AREQ",
            Message::Arep(_) => "AREP",
            Message::Drep(_) => "DREP",
            Message::Rreq(_) => "RREQ",
            Message::Rrep(_) => "RREP",
            Message::Crep(_) => "CREP",
            Message::Rerr(_) => "RERR",
            Message::Data(_) => "DATA",
            Message::Ack(_) => "ACK",
            Message::Probe(_) => "PROBE",
            Message::ProbeAck(_) => "PRACK",
            Message::DnsQuery(_) => "DNSQ",
            Message::DnsReply(_) => "DNSR",
            Message::IpChangeRequest(_) => "IPCREQ",
            Message::IpChangeChallenge(_) => "IPCCH",
            Message::IpChangeProof(_) => "IPCPRF",
            Message::IpChangeResult(_) => "IPCRES",
            Message::PlainRreq(_) => "P-RREQ",
            Message::PlainRrep(_) => "P-RREP",
            Message::PlainRerr(_) => "P-RERR",
        }
    }

    /// Is this one of the seven Table 1 control messages?
    pub fn is_table1_control(&self) -> bool {
        matches!(
            self,
            Message::Areq(_)
                | Message::Arep(_)
                | Message::Drep(_)
                | Message::Rreq(_)
                | Message::Rrep(_)
                | Message::Crep(_)
                | Message::Rerr(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_name_accepts_ldh() {
        assert!(DomainName::new("yahoo.com").is_ok());
        assert!(DomainName::new("a-b.c-1.d").is_ok());
        assert!(DomainName::new("node42").is_ok());
    }

    #[test]
    fn domain_name_rejects_bad_input() {
        assert_eq!(DomainName::new(""), Err(DomainNameError::Empty));
        assert_eq!(
            DomainName::new("UPPER.com"),
            Err(DomainNameError::BadCharacter)
        );
        assert_eq!(DomainName::new("a..b"), Err(DomainNameError::BadLabel));
        assert_eq!(DomainName::new("-x.com"), Err(DomainNameError::BadLabel));
        assert_eq!(DomainName::new("x-.com"), Err(DomainNameError::BadLabel));
        assert_eq!(
            DomainName::new("sp ace"),
            Err(DomainNameError::BadCharacter)
        );
        let long_label = "a".repeat(64);
        assert_eq!(DomainName::new(&long_label), Err(DomainNameError::BadLabel));
        let long_name = format!("{}.{}", "a".repeat(63), "b".repeat(200));
        assert_eq!(DomainName::new(&long_name), Err(DomainNameError::TooLong));
    }

    #[test]
    fn route_record_reverse_and_sign_bytes() {
        let a = Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, 1]);
        let b = Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, 2]);
        let rr = RouteRecord(vec![a, b]);
        assert_eq!(rr.reversed().0, vec![b, a]);
        assert_eq!(rr.reversed().reversed(), rr);
        let bytes = rr.sign_bytes();
        assert_eq!(bytes.len(), 2 + 32);
        assert_ne!(bytes, rr.reversed().sign_bytes(), "order is significant");
    }

    #[test]
    fn srr_projects_to_rr() {
        let a = Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, 1]);
        let srr = SecureRouteRecord(vec![]);
        assert!(srr.to_route_record().is_empty());
        assert!(!srr.contains_ip(&a));
    }

    #[test]
    fn message_kind_names_match_table1() {
        let rerr = Message::PlainRerr(PlainRerr {
            iip: crate::addr::UNSPECIFIED,
            i2ip: crate::addr::UNSPECIFIED,
        });
        assert_eq!(rerr.kind(), "P-RERR");
        assert!(!rerr.is_table1_control());
    }
}
