//! IPv6 addressing for the MANET.
//!
//! We carry our own 128-bit address type rather than `std::net::Ipv6Addr`
//! so the CGA layer can talk about the exact bit fields of Figure 1
//! (site-local prefix / zero field / subnet ID / 64-bit interface ID) and
//! so the wire codec controls the byte layout.

use core::fmt;

/// A 128-bit IPv6 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv6Addr(pub [u8; 16]);

/// The unspecified address `::`, used as the source of DAD probes
/// (a joining host does not own an address yet).
pub const UNSPECIFIED: Ipv6Addr = Ipv6Addr([0; 16]);

/// Well-known site-local DNS server anycast addresses reserved by
/// draft-ietf-ipv6-dns-discovery (Section 2.4 of the paper):
/// `fec0:0:0:ffff::1`, `::2`, `::3`.
pub const DNS_WELL_KNOWN: [Ipv6Addr; 3] = [dns_well_known(1), dns_well_known(2), dns_well_known(3)];

const fn dns_well_known(i: u8) -> Ipv6Addr {
    let mut b = [0u8; 16];
    b[0] = 0xfe;
    b[1] = 0xc0;
    b[6] = 0xff;
    b[7] = 0xff;
    b[15] = i;
    Ipv6Addr(b)
}

impl Ipv6Addr {
    /// Build from eight 16-bit groups (the textual grouping).
    pub fn from_groups(groups: [u16; 8]) -> Self {
        let mut b = [0u8; 16];
        for (i, g) in groups.iter().enumerate() {
            b[2 * i..2 * i + 2].copy_from_slice(&g.to_be_bytes());
        }
        Ipv6Addr(b)
    }

    /// The eight 16-bit groups.
    pub fn groups(&self) -> [u16; 8] {
        let mut g = [0u16; 8];
        for (i, item) in g.iter_mut().enumerate() {
            *item = u16::from_be_bytes([self.0[2 * i], self.0[2 * i + 1]]);
        }
        g
    }

    /// True for the unspecified address `::`.
    pub fn is_unspecified(&self) -> bool {
        self.0 == [0; 16]
    }

    /// True iff the address carries the 10-bit site-local prefix
    /// `1111 1110 11` (`fec0::/10`).
    pub fn is_site_local(&self) -> bool {
        self.0[0] == 0xfe && (self.0[1] & 0xc0) == 0xc0
    }

    /// The low 64 bits: the interface identifier (Figure 1's `H(PK, rn)`).
    pub fn interface_id(&self) -> u64 {
        u64::from_be_bytes(self.0[8..16].try_into().expect("8 bytes"))
    }

    /// The 16-bit subnet ID field (bits 48..64).
    pub fn subnet_id(&self) -> u16 {
        u16::from_be_bytes([self.0[6], self.0[7]])
    }

    /// Bits 10..48 — the paper's 38-bit all-zero field.
    ///
    /// Returns the field as the low 38 bits of a u64.
    pub fn zero_field(&self) -> u64 {
        // Bits 10..48 of the address: bytes 1..6 minus the top 2 bits of byte 1.
        let mut v: u64 = (self.0[1] & 0x3f) as u64;
        for &b in &self.0[2..6] {
            v = (v << 8) | b as u64;
        }
        v
    }

    /// One of the three well-known DNS anycast addresses?
    pub fn is_dns_well_known(&self) -> bool {
        DNS_WELL_KNOWN.contains(self)
    }
}

impl fmt::Debug for Ipv6Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ipv6Addr {
    /// RFC 5952-style rendering: lowercase hex groups, longest zero run
    /// (length ≥ 2) compressed to `::`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups = self.groups();
        // Find the longest run of zero groups.
        let (mut best_start, mut best_len) = (0usize, 0usize);
        let (mut cur_start, mut cur_len) = (0usize, 0usize);
        for (i, &g) in groups.iter().enumerate() {
            if g == 0 {
                if cur_len == 0 {
                    cur_start = i;
                }
                cur_len += 1;
                if cur_len > best_len {
                    best_start = cur_start;
                    best_len = cur_len;
                }
            } else {
                cur_len = 0;
            }
        }
        if best_len < 2 {
            // No compression.
            for (i, g) in groups.iter().enumerate() {
                if i > 0 {
                    write!(f, ":")?;
                }
                write!(f, "{g:x}")?;
            }
            return Ok(());
        }
        for (i, g) in groups.iter().enumerate().take(best_start) {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{g:x}")?;
        }
        write!(f, "::")?;
        for (i, g) in groups.iter().enumerate().skip(best_start + best_len) {
            if i > best_start + best_len {
                write!(f, ":")?;
            }
            write!(f, "{g:x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unspecified_renders_as_double_colon() {
        assert_eq!(UNSPECIFIED.to_string(), "::");
        assert!(UNSPECIFIED.is_unspecified());
    }

    #[test]
    fn dns_well_known_addresses_match_draft() {
        assert_eq!(DNS_WELL_KNOWN[0].to_string(), "fec0:0:0:ffff::1");
        assert_eq!(DNS_WELL_KNOWN[1].to_string(), "fec0:0:0:ffff::2");
        assert_eq!(DNS_WELL_KNOWN[2].to_string(), "fec0:0:0:ffff::3");
        for a in DNS_WELL_KNOWN {
            assert!(a.is_site_local());
            assert!(a.is_dns_well_known());
        }
    }

    #[test]
    fn site_local_prefix_detection() {
        let mut b = [0u8; 16];
        b[0] = 0xfe;
        b[1] = 0xc0;
        assert!(Ipv6Addr(b).is_site_local());
        b[1] = 0xff; // feff::/16 still within fec0::/10
        assert!(Ipv6Addr(b).is_site_local());
        b[1] = 0x80; // fe80 = link-local, not site-local
        assert!(!Ipv6Addr(b).is_site_local());
        assert!(!UNSPECIFIED.is_site_local());
    }

    #[test]
    fn groups_roundtrip() {
        let g = [0xfec0, 0, 0, 0xffff, 0x1234, 0x5678, 0x9abc, 0xdef0];
        assert_eq!(Ipv6Addr::from_groups(g).groups(), g);
    }

    #[test]
    fn interface_id_is_low_64_bits() {
        let a = Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0xdead, 0xbeef, 0x0bad, 0xf00d]);
        assert_eq!(a.interface_id(), 0xdead_beef_0bad_f00d);
    }

    #[test]
    fn subnet_and_zero_fields() {
        let a = Ipv6Addr::from_groups([0xfec0, 0, 0, 0x002a, 0, 0, 0, 1]);
        assert_eq!(a.subnet_id(), 0x2a);
        assert_eq!(a.zero_field(), 0);
        // Put bits into the 38-bit field: byte1 contributes its low 6 bits,
        // bytes 2..6 the remaining 32.
        let b = Ipv6Addr::from_groups([0xfec1, 0xffff, 0xffff, 0, 0, 0, 0, 0]);
        assert_eq!(b.zero_field(), 0x01_ffff_ffff);
    }

    #[test]
    fn zero_field_width_is_38_bits() {
        let mut all = [0xffu8; 16];
        all[0] = 0xfe;
        let v = Ipv6Addr(all).zero_field();
        assert_eq!(v, (1u64 << 38) - 1);
    }

    #[test]
    fn display_compresses_longest_zero_run() {
        let a = Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(a.to_string(), "fec0::1");
        let b = Ipv6Addr::from_groups([1, 0, 0, 2, 0, 0, 0, 3]);
        assert_eq!(b.to_string(), "1:0:0:2::3");
        let c = Ipv6Addr::from_groups([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.to_string(), "1:2:3:4:5:6:7:8");
        let d = Ipv6Addr::from_groups([0, 1, 0, 0, 0, 0, 1, 0]);
        assert_eq!(d.to_string(), "0:1::1:0");
    }

    #[test]
    fn ordering_is_lexicographic_on_bytes() {
        let lo = Ipv6Addr::from_groups([0, 0, 0, 0, 0, 0, 0, 1]);
        let hi = Ipv6Addr::from_groups([0, 0, 0, 0, 0, 0, 1, 0]);
        assert!(lo < hi);
    }
}
