//! Canonical byte strings for every signed payload in the protocol.
//!
//! Signer and verifier must hash exactly the same bytes, so all
//! `[ … ]XSK` payloads from Table 1 are built here and nowhere else. Each
//! payload starts with a domain-separation tag: a signature produced for
//! an AREP can never verify as, say, an RERR even if the fields collide.

use crate::addr::Ipv6Addr;
use crate::msg::{Challenge, DomainName, RouteRecord, Seq};

fn tagged(tag: &[u8], cap: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(tag.len() + cap);
    v.extend_from_slice(tag);
    v
}

/// `[SIP, ch]RSK` — the collision holder's AREP response (Section 3.1).
pub fn arep(sip: &Ipv6Addr, ch: Challenge) -> Vec<u8> {
    let mut v = tagged(b"MANET-AREP-v1", 24);
    v.extend_from_slice(&sip.0);
    v.extend_from_slice(&ch.0.to_be_bytes());
    v
}

/// `[DN, ch]NSK` — the DNS server's DREP on a duplicate name (Section 3.1).
pub fn drep(dn: &DomainName, ch: Challenge) -> Vec<u8> {
    let name = dn.as_str().as_bytes();
    let mut v = tagged(b"MANET-DREP-v1", name.len() + 10);
    v.extend_from_slice(&(name.len() as u16).to_be_bytes());
    v.extend_from_slice(name);
    v.extend_from_slice(&ch.0.to_be_bytes());
    v
}

/// `[SIP, seq]SSK` — the source's identity proof in an RREQ (Section 3.3).
pub fn rreq_src(sip: &Ipv6Addr, seq: Seq) -> Vec<u8> {
    let mut v = tagged(b"MANET-RREQ-SRC-v1", 24);
    v.extend_from_slice(&sip.0);
    v.extend_from_slice(&seq.0.to_be_bytes());
    v
}

/// `[IIP, seq]ISK` — an intermediate hop's SRR entry (Section 3.3).
///
/// Binding `seq` stops an adversary from replaying a hop's entry into a
/// different discovery.
pub fn srr_hop(iip: &Ipv6Addr, seq: Seq) -> Vec<u8> {
    let mut v = tagged(b"MANET-SRR-HOP-v1", 24);
    v.extend_from_slice(&iip.0);
    v.extend_from_slice(&seq.0.to_be_bytes());
    v
}

/// `[SIP, seq, RR]DSK` — the destination's RREP proof (Section 3.3).
pub fn rrep(sip: &Ipv6Addr, seq: Seq, rr: &RouteRecord) -> Vec<u8> {
    let rr_bytes = rr.sign_bytes();
    let mut v = tagged(b"MANET-RREP-v1", 24 + rr_bytes.len());
    v.extend_from_slice(&sip.0);
    v.extend_from_slice(&seq.0.to_be_bytes());
    v.extend_from_slice(&rr_bytes);
    v
}

/// `[S'IP, seq', RR_{S'→S}]SSK` — the cache holder's half of a CREP.
pub fn crep_cache_holder(s2ip: &Ipv6Addr, seq2: Seq, rr_s2_to_s: &RouteRecord) -> Vec<u8> {
    let rr_bytes = rr_s2_to_s.sign_bytes();
    let mut v = tagged(b"MANET-CREP-v1", 24 + rr_bytes.len());
    v.extend_from_slice(&s2ip.0);
    v.extend_from_slice(&seq2.0.to_be_bytes());
    v.extend_from_slice(&rr_bytes);
    v
}

/// `[IIP, I'IP]ISK` — the reporter's RERR proof (Section 3.4).
pub fn rerr(iip: &Ipv6Addr, i2ip: &Ipv6Addr) -> Vec<u8> {
    let mut v = tagged(b"MANET-RERR-v1", 32);
    v.extend_from_slice(&iip.0);
    v.extend_from_slice(&i2ip.0);
    v
}

/// `[SIP, seq, IIP]ISK` — a hop's probe acknowledgement (Section 3.4's
/// route-integrity test). Binding `seq` makes old acks unreplayable into
/// new probes; binding `IIP` stops one hop from impersonating another's
/// liveness.
pub fn probe_ack(sip: &Ipv6Addr, probe_seq: Seq, hop: &Ipv6Addr) -> Vec<u8> {
    let mut v = tagged(b"MANET-PROBE-ACK-v1", 40);
    v.extend_from_slice(&sip.0);
    v.extend_from_slice(&probe_seq.0.to_be_bytes());
    v.extend_from_slice(&hop.0);
    v
}

/// `[qname, answer, ch]NSK` — signed DNS resolution reply (Section 3.2).
pub fn dns_reply(qname: &DomainName, answer: Option<&Ipv6Addr>, ch: Challenge) -> Vec<u8> {
    let name = qname.as_str().as_bytes();
    let mut v = tagged(b"MANET-DNSR-v1", name.len() + 27);
    v.extend_from_slice(&(name.len() as u16).to_be_bytes());
    v.extend_from_slice(name);
    match answer {
        Some(a) => {
            v.push(1);
            v.extend_from_slice(&a.0);
        }
        None => v.push(0),
    }
    v.extend_from_slice(&ch.0.to_be_bytes());
    v
}

/// `[XIP, X'IP, ch]XSK` — the host's IP-change proof (Section 3.2).
pub fn ip_change(old_ip: &Ipv6Addr, new_ip: &Ipv6Addr, ch: Challenge) -> Vec<u8> {
    let mut v = tagged(b"MANET-IPCHG-v1", 40);
    v.extend_from_slice(&old_ip.0);
    v.extend_from_slice(&new_ip.0);
    v.extend_from_slice(&ch.0.to_be_bytes());
    v
}

/// `[dn, accepted, ch]NSK` — the DNS's signed IP-change outcome.
pub fn ip_change_result(dn: &DomainName, accepted: bool, ch: Challenge) -> Vec<u8> {
    let name = dn.as_str().as_bytes();
    let mut v = tagged(b"MANET-IPCHG-RES-v1", name.len() + 11);
    v.extend_from_slice(&(name.len() as u16).to_be_bytes());
    v.extend_from_slice(name);
    v.push(accepted as u8);
    v.extend_from_slice(&ch.0.to_be_bytes());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::UNSPECIFIED;

    fn ip(last: u16) -> Ipv6Addr {
        Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 0, 0, 0, last])
    }

    #[test]
    fn domain_separation_between_payload_kinds() {
        // Same raw fields, different message kinds, must differ.
        let a = arep(&ip(1), Challenge(7));
        let r = rreq_src(&ip(1), Seq(7));
        let h = srr_hop(&ip(1), Seq(7));
        assert_ne!(a, r);
        assert_ne!(r, h);
        assert_ne!(a, h);
    }

    #[test]
    fn payloads_depend_on_every_field() {
        assert_ne!(arep(&ip(1), Challenge(1)), arep(&ip(1), Challenge(2)));
        assert_ne!(arep(&ip(1), Challenge(1)), arep(&ip(2), Challenge(1)));
        let rr1 = RouteRecord(vec![ip(1)]);
        let rr2 = RouteRecord(vec![ip(2)]);
        assert_ne!(rrep(&ip(1), Seq(1), &rr1), rrep(&ip(1), Seq(1), &rr2));
        assert_ne!(rrep(&ip(1), Seq(1), &rr1), rrep(&ip(1), Seq(2), &rr1));
        assert_ne!(rerr(&ip(1), &ip(2)), rerr(&ip(2), &ip(1)));
    }

    #[test]
    fn dns_reply_distinguishes_nxdomain() {
        let dn = DomainName::new("srv.manet").unwrap();
        let some = dns_reply(&dn, Some(&ip(9)), Challenge(3));
        let none = dns_reply(&dn, None, Challenge(3));
        assert_ne!(some, none);
    }

    #[test]
    fn dns_name_length_prefix_prevents_ambiguity() {
        // ("ab", ch with leading byte 'c') must not equal ("abc", …): the
        // length prefix separates them.
        let d1 = DomainName::new("ab").unwrap();
        let d2 = DomainName::new("abc").unwrap();
        assert_ne!(
            drep(&d1, Challenge(u64::from_be_bytes(*b"c\0\0\0\0\0\0\0"))),
            drep(&d2, Challenge(0)),
        );
    }

    #[test]
    fn ip_change_binds_both_addresses_and_challenge() {
        let base = ip_change(&ip(1), &ip(2), Challenge(5));
        assert_ne!(base, ip_change(&ip(2), &ip(1), Challenge(5)));
        assert_ne!(base, ip_change(&ip(1), &ip(2), Challenge(6)));
        assert_ne!(base, ip_change(&UNSPECIFIED, &ip(2), Challenge(5)));
    }

    #[test]
    fn crep_and_rrep_payloads_are_distinct() {
        let rr = RouteRecord(vec![ip(1), ip(2)]);
        assert_ne!(
            crep_cache_holder(&ip(1), Seq(3), &rr),
            rrep(&ip(1), Seq(3), &rr)
        );
    }
}
