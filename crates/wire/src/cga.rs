//! Cryptographically generated addresses — Figure 1 of the paper.
//!
//! A MANET site-local address is laid out as:
//!
//! ```text
//! | 10 bits        | 38 bits   | 16 bits   | 64 bits        |
//! | 1111 1110 11   | all zeros | subnet ID | H(PK, rn)      |
//! | site-local     |           | (0 in a   | CGA interface  |
//! | prefix fec0::/10 |         |  MANET)   | identifier     |
//! ```
//!
//! The interface identifier binds the address to the owner's public key:
//! claiming an address requires exhibiting `(PK, rn)` with
//! `H(PK, rn) = interface_id`, and *using* it requires answering
//! challenges with the matching private key.

use crate::addr::Ipv6Addr;
use manet_crypto::{h_pk_rn, PublicKey};

/// The paper fixes the subnet ID to zero inside a MANET ("the subnet ID
/// makes no sense for a MANET").
pub const MANET_SUBNET_ID: u16 = 0;

/// Construct the CGA site-local address `fec0::H(PK, rn)` (Figure 1).
pub fn generate(pk: &PublicKey, rn: u64) -> Ipv6Addr {
    generate_with_subnet(pk, rn, MANET_SUBNET_ID)
}

/// Construct a CGA with an explicit subnet ID (used when a gateway bridges
/// the MANET to the Internet; see Section 3.1).
pub fn generate_with_subnet(pk: &PublicKey, rn: u64, subnet: u16) -> Ipv6Addr {
    let mut b = [0u8; 16];
    b[0] = 0xfe; // site-local prefix 1111 1110 11 + 38 zero bits
    b[1] = 0xc0;
    b[6..8].copy_from_slice(&subnet.to_be_bytes());
    b[8..16].copy_from_slice(&h_pk_rn(pk, rn).to_be_bytes());
    Ipv6Addr(b)
}

/// Why a claimed CGA does not check out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgaError {
    /// Address is not under `fec0::/10`.
    NotSiteLocal,
    /// Bits 10..48 are not all zero.
    NonZeroReservedField,
    /// `H(PK, rn)` does not match the interface identifier — the claimant
    /// does not own this address.
    InterfaceIdMismatch,
}

impl core::fmt::Display for CgaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CgaError::NotSiteLocal => write!(f, "address is not site-local (fec0::/10)"),
            CgaError::NonZeroReservedField => write!(f, "38-bit reserved field is not zero"),
            CgaError::InterfaceIdMismatch => {
                write!(f, "H(PK, rn) does not match the interface identifier")
            }
        }
    }
}

impl std::error::Error for CgaError {}

/// Verify that `addr` is a well-formed MANET CGA owned by `(pk, rn)`.
///
/// This is the receiver-side half of every AREP/RREQ/RREP/RERR check in
/// Section 3: "verify if the lower part of XIP matches H(XPK, Xrn)".
pub fn verify(addr: &Ipv6Addr, pk: &PublicKey, rn: u64) -> Result<(), CgaError> {
    if !addr.is_site_local() {
        return Err(CgaError::NotSiteLocal);
    }
    if addr.zero_field() != 0 {
        return Err(CgaError::NonZeroReservedField);
    }
    if addr.interface_id() != h_pk_rn(pk, rn) {
        return Err(CgaError::InterfaceIdMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_crypto::KeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn keypair(seed: u64) -> KeyPair {
        KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(seed))
    }

    #[test]
    fn generated_address_verifies() {
        let kp = keypair(1);
        let addr = generate(kp.public(), 77);
        assert_eq!(verify(&addr, kp.public(), 77), Ok(()));
    }

    #[test]
    fn layout_matches_figure_1() {
        let kp = keypair(2);
        let addr = generate(kp.public(), 5);
        assert!(addr.is_site_local(), "10-bit prefix fec0::/10");
        assert_eq!(addr.zero_field(), 0, "38-bit zero field");
        assert_eq!(addr.subnet_id(), 0, "16-bit subnet ID fixed to 0");
        assert_eq!(
            addr.interface_id(),
            manet_crypto::h_pk_rn(kp.public(), 5),
            "64-bit H(PK, rn)"
        );
        // The textual form is fec0::<iid> as in the paper.
        assert!(addr.to_string().starts_with("fec0::"));
    }

    #[test]
    fn wrong_rn_fails_verification() {
        let kp = keypair(3);
        let addr = generate(kp.public(), 10);
        assert_eq!(
            verify(&addr, kp.public(), 11),
            Err(CgaError::InterfaceIdMismatch)
        );
    }

    #[test]
    fn wrong_key_fails_verification() {
        let kp1 = keypair(4);
        let kp2 = keypair(5);
        let addr = generate(kp1.public(), 10);
        assert_eq!(
            verify(&addr, kp2.public(), 10),
            Err(CgaError::InterfaceIdMismatch)
        );
    }

    #[test]
    fn non_site_local_rejected() {
        let kp = keypair(6);
        let mut addr = generate(kp.public(), 1);
        addr.0[0] = 0x20; // global unicast
        assert_eq!(verify(&addr, kp.public(), 1), Err(CgaError::NotSiteLocal));
    }

    #[test]
    fn dirty_reserved_field_rejected() {
        let kp = keypair(7);
        let mut addr = generate(kp.public(), 1);
        addr.0[3] = 0xff;
        assert_eq!(
            verify(&addr, kp.public(), 1),
            Err(CgaError::NonZeroReservedField)
        );
    }

    #[test]
    fn new_rn_changes_address_same_key() {
        // Section 3.1: on collision the host picks a new rn, keeping PK.
        let kp = keypair(8);
        let a1 = generate(kp.public(), 1);
        let a2 = generate(kp.public(), 2);
        assert_ne!(a1, a2);
        assert_eq!(verify(&a2, kp.public(), 2), Ok(()));
    }

    #[test]
    fn subnet_override_for_gateway() {
        let kp = keypair(9);
        let addr = generate_with_subnet(kp.public(), 1, 0xbeef);
        assert_eq!(addr.subnet_id(), 0xbeef);
        // Default MANET verify still demands subnet bits are part of layout,
        // but subnet is independent of ownership: interface id still matches.
        assert_eq!(addr.interface_id(), manet_crypto::h_pk_rn(kp.public(), 1));
    }
}
