//! # manet-wire
//!
//! Addressing and wire formats for the secure-MANET reproduction:
//!
//! * [`addr`] — 128-bit IPv6 addresses, the site-local prefix, and the
//!   well-known DNS anycast addresses;
//! * [`cga`] — cryptographically generated addresses (Figure 1);
//! * [`msg`] — every control message of Table 1 plus auxiliary traffic;
//! * [`sigdata`] — the canonical byte strings behind each `[…]XSK`
//!   signature;
//! * [`codec`] — strict binary encode/decode with per-message sizes.

pub mod addr;
pub mod cga;
pub mod codec;
pub mod msg;
pub mod sigdata;

pub use addr::{Ipv6Addr, DNS_WELL_KNOWN, UNSPECIFIED};
pub use cga::CgaError;
pub use codec::{CodecError, PlainRreqHeader};
pub use msg::{
    Ack, Arep, Areq, Challenge, Crep, Data, DnsQuery, DnsReply, DomainName, Drep, IdentityProof,
    IpChangeChallenge, IpChangeProof, IpChangeRequest, IpChangeResult, Message, PlainRerr,
    PlainRrep, PlainRreq, Probe, ProbeAck, Rerr, RouteRecord, Rrep, Rreq, SecureRouteRecord, Seq,
    SrrEntry,
};
