//! Black-hole defense demo — Section 4's headline attack, on plain DSR
//! and on the secure protocol, side by side.
//!
//! The attacker sits on the shortest path between source and
//! destination, forges route replies to attract traffic, and silently
//! drops every data packet it is asked to relay.
//!
//! ```sh
//! cargo run --example blackhole_defense
//! ```

use manet_secure::scenario::{Placement, ScenarioBuilder, Workload, BYPASS_ATTACKER};
use manet_secure::{attacks, Behavior};
use manet_sim::SimDuration;

fn workload() -> Workload {
    Workload::flows(vec![(0, 2)], 30, SimDuration::from_millis(300))
}

fn plain_run(behavior: Option<Behavior>) -> (f64, u64) {
    // Same bypass geometry; Placement::Bypass drops the DNS slot for the
    // plain stack, so host indices (S=0, A=1, D=2) coincide with the
    // secure layout's.
    let attackers = behavior
        .map(|b| vec![(BYPASS_ATTACKER, b)])
        .unwrap_or_default();
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .placement(Placement::Bypass)
        .adversaries(attackers)
        .seed(1)
        .plain()
        .build();
    let report = net.run(&workload());
    let dropped = net.host(BYPASS_ATTACKER).stats().atk_data_dropped;
    (report.delivery_or_nan(), dropped)
}

fn secure_run(behavior: Option<Behavior>, credits: bool) -> (f64, u64, u64) {
    let attackers = behavior
        .map(|b| vec![(BYPASS_ATTACKER, b)])
        .unwrap_or_default();
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .placement(Placement::Bypass)
        .adversaries(attackers)
        .seed(1)
        .secure()
        .tune(|p| p.credit.enabled = credits)
        .build();
    assert!(net.bootstrap());
    let report = net.run(&workload());
    let rejected = net.engine.metrics().counter("sec.rrep_rejected");
    let dropped = net.host(BYPASS_ATTACKER).stats().atk_data_dropped;
    (report.delivery_or_nan(), rejected, dropped)
}

fn main() {
    println!("topology: S ── A ── D  with a two-relay detour around A");
    println!("flow: 30 packets S → D\n");

    let (clean_plain, _) = plain_run(None);
    let (clean_secure, _, _) = secure_run(None, true);
    println!("no attacker:");
    println!("  plain DSR        delivery {clean_plain:.2}");
    println!("  secure protocol  delivery {clean_secure:.2}\n");

    let (atk_plain, dropped) = plain_run(Some(attacks::black_hole()));
    println!("black hole at A (forges RREPs, drops data):");
    println!("  plain DSR        delivery {atk_plain:.2}   (A swallowed {dropped} packets)");

    let (atk_secure, rejected, dropped) = secure_run(Some(attacks::black_hole()), true);
    println!(
        "  secure protocol  delivery {atk_secure:.2}   ({rejected} forged RREPs rejected, {dropped} drops on honest-looking relays)"
    );

    let (quiet, _, quiet_dropped) = secure_run(Some(attacks::data_dropper()), true);
    let (quiet_off, _, _) = secure_run(Some(attacks::data_dropper()), false);
    println!("\nquiet dropper at A (honest control plane, drops data):");
    println!("  secure, credits ON   delivery {quiet:.2}   (A still swallowed {quiet_dropped})");
    println!("  secure, credits OFF  delivery {quiet_off:.2}");
    println!("\ncredits shift traffic to the detour once A's credit sinks —");
    println!("Section 3.4's \"choose a route in which all hosts exhibit high credits\".");
}
