//! Bootstrap storm — how fast can an open MANET form from nothing?
//!
//! The paper's claim (iii): "relying on a DNS server, it allows
//! bootstrapping a MANET with little pre-configuration overhead, so
//! network formation is light-weight". This example forms networks of
//! growing size with the formation-only workload and reports join
//! latency and the control-message cost, including what happens when an
//! address-squatting attacker tries to deny the bootstrap.
//!
//! ```sh
//! cargo run --release --example bootstrap_storm
//! ```

use manet_secure::attacks;
use manet_secure::scenario::{Placement, ScenarioBuilder, Workload};
use manet_sim::Field;

fn form(n: usize, squatter: bool) -> (bool, f64, u64, u64, u64) {
    let attackers = if squatter {
        vec![(0, attacks::dad_squatter())]
    } else {
        Vec::new()
    };
    let mut net = ScenarioBuilder::new()
        .hosts(n)
        .placement(Placement::Uniform)
        .field(Field::new(700.0, 700.0))
        .adversaries(attackers)
        .seed(7 + n as u64)
        .secure()
        .build();
    // The bootstrap-storm workload: no traffic, just the staggered join
    // storm driven to completion by the shared driver.
    let report = net.run(&Workload::bootstrap_storm());
    let ok = net.all_ready();
    // Mean time from a host's join instant to its DAD confirmation.
    let mut latencies = Vec::new();
    for (i, _) in (0..n).enumerate() {
        if let Some(t) = net.host(i).stats().joined_at {
            let join = net.last_join.as_secs_f64() / n as f64 * (i as f64 + 1.0);
            latencies.push(t.as_secs_f64() - join);
        }
    }
    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let m = net.engine.metrics();
    let committed = net
        .dns_node()
        .dns_state()
        .map(|d| d.name_count())
        .unwrap_or(0) as u64;
    (
        ok,
        mean_latency,
        m.counter("ctl.tx_msgs"),
        report.tx_bytes,
        committed,
    )
}

fn main() {
    println!("network formation from zero pre-configuration (only the DNS key):\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "nodes", "all ready", "join lat(s)", "ctl msgs", "ctl bytes"
    );
    for n in [5, 10, 20, 30] {
        let (ok, lat, msgs, bytes, committed) = form(n, false);
        println!(
            "{n:>6} {:>10} {lat:>12.2} {msgs:>12} {bytes:>12}   ({committed} names committed)",
            ok
        );
    }

    println!("\nwith an address-squatting attacker answering every AREQ:");
    for n in [10, 20] {
        let (ok, lat, msgs, bytes, committed) = form(n, true);
        println!(
            "{n:>6} {:>10} {lat:>12.2} {msgs:>12} {bytes:>12}   ({committed} names committed)",
            ok
        );
    }
    println!("\nforged AREPs fail the CGA check, so joiners keep their first");
    println!("addresses — the squatter only adds bytes, not denial.");
}
