//! Disaster-rescue scenario — the paper's motivating application.
//!
//! A rescue team spreads over a field with a command-post DNS node.
//! Team members join as they arrive (no pre-configured addresses — only
//! the DNS public key on each device), move around, and exchange status
//! reports with the command post and each other. A pre-registered
//! "command.post" name lets anyone find the coordinator.
//!
//! ```sh
//! cargo run --example disaster_rescue
//! ```

use manet_secure::scenario::{host_name, Placement, ScenarioBuilder, Workload};
use manet_secure::SecureNode;
use manet_sim::{Field, Mobility, SimDuration};
use manet_wire::DomainName;

fn main() {
    let n_rescuers = 14;
    let mut net = ScenarioBuilder::new()
        .hosts(n_rescuers)
        .placement(Placement::Uniform)
        .field(Field::new(800.0, 800.0))
        .mobility(Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 4.0, // walking / jogging rescuers
            pause_s: 2.0,
        })
        .seed(911)
        .secure()
        // Rescuer 0 is the coordinator with a pre-registered name — the
        // paper's "permanent domain name" case: impersonation impossible.
        .pre_register(vec![0])
        .build();

    println!("deploying {} rescuers + command-post DNS…", n_rescuers);
    let ok = net.bootstrap();
    let ready = (0..n_rescuers).filter(|&i| net.host(i).is_ready()).count();
    println!("  {ready}/{n_rescuers} devices autoconfigured (complete: {ok})");

    // Everyone locates the coordinator through the DNS.
    let coord_name = host_name(0);
    for i in 1..n_rescuers {
        let id = net.hosts[i];
        let name = coord_name.clone();
        net.engine.with_protocol::<SecureNode, _>(id, |n, ctx| {
            n.resolve(ctx, name);
        });
    }
    let t = net.engine.now() + SimDuration::from_secs(10);
    net.engine.run_until(t);
    let located = (1..n_rescuers)
        .filter(|&i| net.host(i).stats().resolved.get(&coord_name) == Some(&Some(net.host_ip(0))))
        .count();
    println!(
        "  {located}/{} rescuers located the coordinator by name",
        n_rescuers - 1
    );

    // Status reports: a converge-cast workload — every rescuer streams
    // to the coordinator — plus two direct pair flows, under mobility.
    println!("running 30 s of status traffic under mobility…");
    let mut w = Workload::converge_cast(1..n_rescuers, 0, 12, SimDuration::from_millis(400));
    w.flows.push((3, 7));
    w.flows.push((5, 11));
    let report = net.run(&w);

    println!(
        "  coordinator received {} reports; network delivery ratio {:.2}",
        net.host(0).stats().data_received,
        report.delivery_or_nan(),
    );
    let m = net.engine.metrics();
    println!(
        "  discoveries: {} (+{} served from caches via CREP), RERRs: {}",
        m.counter("route.discovered"),
        m.counter("route.discovered_via_crep"),
        m.counter("route.rerr_received"),
    );

    // A rescuer's radio is replaced mid-operation: same key pair, new
    // address, DNS mapping moved via the challenge/response flow.
    let mover = net.hosts[4];
    net.engine.with_protocol::<SecureNode, _>(mover, |n, ctx| {
        n.request_ip_change(ctx, 0xD15A_57E4);
    });
    let t = net.engine.now() + SimDuration::from_secs(10);
    net.engine.run_until(t);
    println!(
        "  h4 moved its name to {} (accepted: {:?})",
        net.host(4).ip(),
        net.host(4).stats().ip_change_accepted,
    );

    let _ = DomainName::new("command.post"); // (name shape the paper uses)
}
