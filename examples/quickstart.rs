//! Quickstart: build a small secure MANET with the scenario builder,
//! bootstrap it, run a declarative workload, and read the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use manet_secure::scenario::{host_name, ScenarioBuilder, Workload};
use manet_secure::SecureNode;
use manet_sim::SimDuration;

fn main() {
    // Six hosts plus a DNS server on a multi-hop chain. Everything else
    // (key generation, CGA addresses, secure DAD, name registration) is
    // driven by the protocol itself.
    let mut net = ScenarioBuilder::new()
        .hosts(6)
        .seed(2003) // the paper's year; any seed reproduces exactly
        .secure()
        .build();

    println!("bootstrapping: staggered joins, secure DAD, name registration…");
    assert!(net.bootstrap(), "all hosts should finish DAD");

    for i in 0..6 {
        let n = net.host(i);
        println!(
            "  {}  {}  (DAD rounds: {}, joined at t={:.2}s)",
            host_name(i),
            n.ip(),
            n.stats().dad_attempts,
            n.stats().joined_at.expect("ready").as_secs_f64(),
        );
    }

    // Resolve a name through the DNS — the reply is signed with the DNS
    // key every host was provisioned with.
    let resolver = net.hosts[5];
    net.engine
        .with_protocol::<SecureNode, _>(resolver, |n, ctx| {
            n.resolve(ctx, host_name(0));
        });
    let t = net.engine.now() + SimDuration::from_secs(5);
    net.engine.run_until(t);
    let answer = net.host(5).stats().resolved.get(&host_name(0)).cloned();
    println!("h5 resolved {} → {:?}", host_name(0), answer.flatten());

    // A declarative workload: 20 packets h0 → h5 over 5 hops, 250 ms
    // apart. One driver executes it; one report describes what happened.
    println!("running a 20-packet flow h0 → h5 over 5 hops…");
    let report = net.run(&Workload::flows(
        vec![(0, 5)],
        20,
        SimDuration::from_millis(250),
    ));

    println!(
        "  sent {} / acked {}  (delivery ratio {:.2})",
        report.totals.data_sent,
        report.totals.data_acked,
        report.delivery_or_nan(),
    );
    let dst = net.host_ip(5);
    if let Some(relays) = net.host(0).cached_route(&dst, net.engine.now()) {
        println!("  route relays: {relays:?}");
    }
    let m = net.engine.metrics();
    println!(
        "  control traffic: {} messages, {} bytes ({} bytes Table-1 control)",
        m.counter("ctl.tx_msgs"),
        report.tx_bytes,
        m.counter("ctl.table1_bytes"),
    );
    println!(
        "  discovery latency: mean {:.1} ms over {} discoveries",
        m.series("route.discovery_latency_s").mean() * 1e3,
        m.series("route.discovery_latency_s").len(),
    );
    println!(
        "  crypto pipeline: {} RSA verifications run, {} served from cache",
        report.crypto.executed, report.crypto.cached,
    );
}
