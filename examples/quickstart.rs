//! Quickstart: build a small secure MANET, bootstrap it, send data, and
//! look at what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use manet_secure::scenario::{build_secure, host_name, NetworkParams};
use manet_secure::SecureNode;
use manet_sim::SimDuration;

fn main() {
    // Six hosts plus a DNS server on a multi-hop chain. Everything else
    // (key generation, CGA addresses, secure DAD, name registration) is
    // driven by the protocol itself.
    let mut net = build_secure(&NetworkParams {
        n_hosts: 6,
        seed: 2003, // the paper's year; any seed reproduces exactly
        ..NetworkParams::default()
    });

    println!("bootstrapping: staggered joins, secure DAD, name registration…");
    assert!(net.bootstrap(), "all hosts should finish DAD");

    for i in 0..6 {
        let n = net.host(i);
        println!(
            "  {}  {}  (DAD rounds: {}, joined at t={:.2}s)",
            host_name(i),
            n.ip(),
            n.stats().dad_attempts,
            n.stats().joined_at.expect("ready").as_secs_f64(),
        );
    }

    // Resolve a name through the DNS — the reply is signed with the DNS
    // key every host was provisioned with.
    let resolver = net.hosts[5];
    net.engine.with_protocol::<SecureNode, _>(resolver, |n, ctx| {
        n.resolve(ctx, host_name(0));
    });
    let t = net.engine.now() + SimDuration::from_secs(5);
    net.engine.run_until(t);
    let answer = net.host(5).stats().resolved.get(&host_name(0)).cloned();
    println!("h5 resolved {} → {:?}", host_name(0), answer.flatten());

    // Send data end to end: route discovery (RREQ with per-hop identity
    // proofs, signed RREP), then source-routed delivery with e2e acks.
    println!("running a 20-packet flow h0 → h5 over 5 hops…");
    net.run_flows(&[(0, 5)], 20, SimDuration::from_millis(250));

    let h0 = net.host(0);
    println!(
        "  sent {} / acked {}  (delivery ratio {:.2})",
        h0.stats().data_sent,
        h0.stats().data_acked,
        net.delivery_ratio()
    );
    let dst = net.host_ip(5);
    if let Some(relays) = h0.cached_route(&dst, net.engine.now()) {
        println!("  route relays: {relays:?}");
    }
    let m = net.engine.metrics();
    println!(
        "  control traffic: {} messages, {} bytes ({} bytes Table-1 control)",
        m.counter("ctl.tx_msgs"),
        m.counter("ctl.tx_bytes"),
        m.counter("ctl.table1_bytes"),
    );
    println!(
        "  discovery latency: mean {:.1} ms over {} discoveries",
        m.series("route.discovery_latency_s").mean() * 1e3,
        m.series("route.discovery_latency_s").len(),
    );
}
