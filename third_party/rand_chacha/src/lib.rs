//! Workspace-local stand-in for `rand_chacha`: a real ChaCha
//! stream-cipher generator (RFC 8439 block function, configurable round
//! count) implementing the local `rand` traits. Deterministic, seedable,
//! and of cryptographic stream quality — everything the simulator's
//! reproducibility contract needs. Output is *not* guaranteed to be
//! byte-identical to the crates.io rand_chacha implementation; nothing
//! in this workspace pins such vectors.

use rand::{RngCore, SeedableRng};

/// ChaCha with `R` double-rounds (so `ChaChaCore<6>` is ChaCha12).
#[derive(Clone, Debug)]
pub struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = self.stream as u32;
        s[15] = (self.stream >> 32) as u32;
        let input = s;
        for _ in 0..DOUBLE_ROUNDS {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Select an independent stream (nonce) under the same key.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.idx = 16;
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaCore<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaCore<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

pub type ChaCha8Rng = ChaChaCore<4>;
pub type ChaCha12Rng = ChaChaCore<6>;
pub type ChaCha20Rng = ChaChaCore<10>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: ChaCha20 block 0 with all-zero key, nonce and
    /// counter (RFC 8439 appendix A.1, test vector #1). With everything
    /// zero, words 12–15 are zero under both the RFC's 32+96 layout and
    /// our 64+64 layout, so the keystream is directly comparable.
    #[test]
    fn chacha20_zero_key_known_answer() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let mut out = [0u8; 64];
        rng.fill_bytes(&mut out);
        let expected: [u8; 64] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7, 0xda, 0x41, 0x59, 0x7c, 0x51, 0x57, 0x48, 0x8d, 0x77, 0x24,
            0xe0, 0x3f, 0xb8, 0xd8, 0x4a, 0x37, 0x6a, 0x43, 0xb8, 0xf4, 0x15, 0x18, 0xa1, 0x1c,
            0xc3, 0x87, 0xb6, 0x69, 0xb2, 0xee, 0x65, 0x86,
        ];
        assert_eq!(out, expected, "ChaCha20 core does not match RFC 8439 A.1");
    }

    /// The counter must live in word 12: block 1 differs from block 0
    /// and re-seeding reproduces both.
    #[test]
    fn counter_advances_blocks() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let mut blocks = [0u8; 128];
        rng.fill_bytes(&mut blocks);
        let (b0, b1) = blocks.split_at(64);
        assert_ne!(b0, b1);
        let mut rng2 = ChaCha20Rng::from_seed([0u8; 32]);
        let mut again = [0u8; 128];
        rng2.fill_bytes(&mut again);
        assert_eq!(blocks, again);
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn same_seed_reproduces() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut buf_a = [0u8; 33];
        let mut buf_b = [0u8; 33];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }
}
