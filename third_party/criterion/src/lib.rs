//! Workspace-local stand-in for `criterion`: enough of the API for the
//! `benches/` targets to compile and produce honest wall-clock numbers
//! (median of timed batches printed to stdout). No statistics engine,
//! no HTML reports — the numbers are for relative, same-machine
//! comparison, which is all the exhibit harness needs offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;
const TARGET_BATCH: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1000;

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub sizes batches by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= TARGET_BATCH || iters >= MAX_ITERS {
                break;
            }
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<40} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gib = n as f64 / per_iter; // bytes per ns == GiB-ish per s
            format!("  {gib:>8.3} GB/s")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 * 1e3 / per_iter;
            format!("  {meps:>8.3} Melem/s")
        }
        None => String::new(),
    };
    println!(
        "{label:<40} {:>12.1} ns/iter  ({} iters){rate}",
        per_iter, b.iters_done
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
