//! Workspace-local stand-in for the `rand` crate, implementing the
//! subset of the 0.8 API used by this repository. The build environment
//! has no network access to crates.io, and the simulator only needs
//! deterministic seedable generators — not the full distribution zoo.
//!
//! Provided: [`RngCore`], [`SeedableRng`] (with the SplitMix64-based
//! `seed_from_u64` default, matching rand_core 0.6 semantics), [`Rng`]
//! with `gen`/`gen_range`/`gen_bool`/`fill_bytes`, and the `Standard`
//! distribution for the primitive types the workspace samples.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// Core random-number generation: the raw output interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64. NOTE: rand_core
    /// 0.6 expands with a PCG32 step per 4-byte chunk instead, so
    /// swapping the real crates back in changes every seeded stream;
    /// nothing in this workspace pins cross-crate seed-derived values.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Error type for fallible construction (kept for API parity).
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// User-facing convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        sample_f64(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from directly (`rng.gen_range(a..b)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = wide_below(rng, span);
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                let v = wide_below(rng, span);
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` using 128-bit multiply-shift reduction
/// (Lemire); bias is < 2^-64, irrelevant for simulation workloads.
fn wide_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let m = (rng.next_u64() as u128).wrapping_mul(bound);
        m >> 64
    } else {
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        raw % bound
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (sample_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (sample_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
