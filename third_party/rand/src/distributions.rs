//! The `Standard` distribution for the primitive types this workspace
//! samples with `rng.gen()`.

use crate::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over the whole value domain (unit interval for floats).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T, const N: usize> Distribution<[T; N]> for Standard
where
    Standard: Distribution<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
        core::array::from_fn(|_| self.sample(rng))
    }
}
