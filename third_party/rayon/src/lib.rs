//! Workspace-local stand-in for `rayon`: the `par_iter().map(..)` +
//! `collect()`/`sum()` shape the sweep runner uses, executed on scoped
//! OS threads (one chunk per core). Not work-stealing — a simulation
//! grid's cells are coarse and uniform enough that static chunking is
//! within a few percent of the real thing.

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
    pub use crate::IntoParallelRefMutIterator;
}

/// Entry point: borrow a collection as a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_chunked(self.slice, &self.f).into_iter().collect()
    }

    pub fn sum<S, R>(self) -> S
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        S: std::iter::Sum<R>,
    {
        run_chunked(self.slice, &self.f).into_iter().sum()
    }
}

/// Entry point: borrow a collection as a mutable parallel iterator.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMut<'_, T> {
    /// Apply `f` to every element, one chunk per core, on scoped
    /// threads. With a single core (or a single element) this runs
    /// inline on the calling thread — no spawn overhead — which is what
    /// makes it safe to call once per fine-grained work unit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            for item in self.slice.iter_mut() {
                f(item);
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            for part in self.slice.chunks_mut(chunk) {
                scope.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Apply `f` to every element on scoped threads, preserving input order.
fn run_chunked<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(slice: &'a [T], f: &F) -> Vec<R> {
    let n = slice.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return slice.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = slice
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon-stub worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let xs: Vec<u64> = (1..=100).collect();
        let s: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = vec![];
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut xs: Vec<u64> = (0..1000).collect();
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(xs, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_on_empty_and_singleton() {
        let mut none: Vec<u32> = vec![];
        none.par_iter_mut().for_each(|x| *x = 7);
        let mut one = vec![0u32];
        one.par_iter_mut().for_each(|x| *x = 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn nested_par_iter_works() {
        let outer: Vec<u64> = (0..8).collect();
        let inner: Vec<u64> = (0..8).collect();
        let grid: Vec<Vec<u64>> = outer
            .par_iter()
            .map(|&o| inner.par_iter().map(|&i| o * 10 + i).collect())
            .collect();
        assert_eq!(grid[3][4], 34);
    }
}
