//! The `Strategy` trait and the core combinators.

use crate::TestRng;

/// How many times a filtering strategy retries before giving up and
/// letting the harness count the case as rejected.
const FILTER_RETRIES: usize = 64;

/// A recipe for generating random values of one type.
///
/// `generate` returns `None` when an attached filter could not be
/// satisfied; the `proptest!` harness converts that into a case
/// rejection (the analogue of upstream's local-reject path).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason,
            f,
        }
    }

    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    _reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<O::Value> {
        (self.f)(self.inner.generate(rng)?).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some(self.start.wrapping_add(rng.below(span) as $t))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo.wrapping_add(rng.below(span as u64) as $t))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        Some(lo + rng.next_f64() * (hi - lo))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
