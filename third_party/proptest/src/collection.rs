//! Collection strategies: `vec(elem, size)`.

use crate::strategy::Strategy;
use crate::TestRng;

/// Inclusive-exclusive size bounds, converted from the usual range forms.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
