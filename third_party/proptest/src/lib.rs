//! Workspace-local stand-in for `proptest`, implementing the subset this
//! repository's property tests use: `Strategy` with `prop_map`/
//! `prop_filter`, `any::<T>()`, ranges and tuples as strategies,
//! `collection::vec`, `option::of`, `Just`, `prop_oneof!`, a
//! regex-subset string strategy, and the `proptest!`/`prop_assert*`/
//! `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case prints
//! its RNG seed and case number instead — cases are deterministic per
//! test name, so failures reproduce exactly), and filters/assumes give
//! up after a bounded number of rejections rather than tracking a
//! global rejection quota.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Per-run configuration: only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: skip, not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic per-case generator: SplitMix64 seeded from the
/// fully-qualified test name and case index, so every case reproduces
/// from its printed `(test, case)` pair alone.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h.wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Run the body of one `proptest!`-generated test function.
///
/// Not part of the public proptest API; called from the expansion of
/// [`proptest!`].
pub fn run_property_test<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Generous reject allowance, matching upstream's spirit: heavy use
    // of prop_assume should skip cases, not starve the run.
    let max_rejects = config.cases.saturating_mul(8).max(1024);
    let mut rejects = 0u32;
    let mut executed = 0u32;
    let mut case = 0u64;
    while executed < config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "{test_name}: too many prop_assume rejections \
                         ({rejects} rejects for {executed}/{} cases)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case {case}: {msg}");
            }
        }
        case += 1;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property_test(full_name, &config, |rng| {
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::Strategy::generate(&{ $strat }, rng)
                        .ok_or_else(|| $crate::TestCaseError::reject("strategy filter"))?;
                )+
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
