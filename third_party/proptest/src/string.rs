//! String strategies from regex-subset patterns.
//!
//! A `&str` is a `Strategy<Value = String>` whose pattern supports the
//! subset this workspace's tests use: literals, `\`-escapes, `.`,
//! character classes `[a-z0-9_]` (ranges and singles, no negation),
//! groups `( … | … )`, and the quantifiers `?`, `*`, `+`, `{n}`,
//! `{m,n}`. Unbounded repeats are capped at `min + 8`.

use crate::strategy::Strategy;
use crate::TestRng;

const UNBOUNDED_EXTRA: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Any printable ASCII character (the `.` metachar).
    Dot,
    /// Inclusive character ranges; singles are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<Seq>),
}

type Seq = Vec<(Atom, u32, u32)>;

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let alts = parse_alternation(&mut self.chars().peekable(), false)
            .unwrap_or_else(|e| panic!("bad pattern {self:?}: {e}"));
        let mut out = String::new();
        gen_alts(&alts, rng, &mut out);
        Some(out)
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_alternation(it: &mut Chars, in_group: bool) -> Result<Vec<Seq>, String> {
    let mut alts = vec![Vec::new()];
    loop {
        match it.peek().copied() {
            None => {
                if in_group {
                    return Err("unterminated group".into());
                }
                return Ok(alts);
            }
            Some(')') if in_group => {
                it.next();
                return Ok(alts);
            }
            Some(')') => return Err("unbalanced ')'".into()),
            Some('|') => {
                it.next();
                alts.push(Vec::new());
            }
            Some(_) => {
                let atom = parse_atom(it)?;
                let (min, max) = parse_quantifier(it)?;
                alts.last_mut().expect("non-empty").push((atom, min, max));
            }
        }
    }
}

fn parse_atom(it: &mut Chars) -> Result<Atom, String> {
    match it.next().expect("caller peeked") {
        '(' => Ok(Atom::Group(parse_alternation(it, true)?)),
        '[' => parse_class(it),
        '.' => Ok(Atom::Dot),
        '\\' => match it.next() {
            Some(c) => Ok(Atom::Lit(c)),
            None => Err("dangling escape".into()),
        },
        c @ ('*' | '+' | '?' | '{') => Err(format!("dangling quantifier '{c}'")),
        c => Ok(Atom::Lit(c)),
    }
}

fn parse_class(it: &mut Chars) -> Result<Atom, String> {
    let mut ranges = Vec::new();
    loop {
        let c = match it.next() {
            None => return Err("unterminated class".into()),
            Some(']') => {
                if ranges.is_empty() {
                    return Err("empty class".into());
                }
                return Ok(Atom::Class(ranges));
            }
            Some('\\') => it.next().ok_or("dangling escape in class")?,
            Some(c) => c,
        };
        if it.peek() == Some(&'-') {
            it.next();
            match it.peek() {
                Some(']') | None => {
                    // Trailing '-' is a literal.
                    ranges.push((c, c));
                    ranges.push(('-', '-'));
                }
                Some(_) => {
                    let hi = it.next().expect("peeked");
                    if hi < c {
                        return Err(format!("inverted range {c}-{hi}"));
                    }
                    ranges.push((c, hi));
                }
            }
        } else {
            ranges.push((c, c));
        }
    }
}

fn parse_quantifier(it: &mut Chars) -> Result<(u32, u32), String> {
    match it.peek().copied() {
        Some('?') => {
            it.next();
            Ok((0, 1))
        }
        Some('*') => {
            it.next();
            Ok((0, UNBOUNDED_EXTRA))
        }
        Some('+') => {
            it.next();
            Ok((1, 1 + UNBOUNDED_EXTRA))
        }
        Some('{') => {
            it.next();
            let mut spec = String::new();
            loop {
                match it.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return Err("unterminated {n,m}".into()),
                }
            }
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad repeat {spec:?}"))
            };
            match spec.split_once(',') {
                None => {
                    let n = parse_n(&spec)?;
                    Ok((n, n))
                }
                Some((lo, "")) => {
                    let lo = parse_n(lo)?;
                    Ok((lo, lo + UNBOUNDED_EXTRA))
                }
                Some((lo, hi)) => {
                    let (lo, hi) = (parse_n(lo)?, parse_n(hi)?);
                    if hi < lo {
                        return Err(format!("inverted repeat {spec:?}"));
                    }
                    Ok((lo, hi))
                }
            }
        }
        _ => Ok((1, 1)),
    }
}

fn gen_alts(alts: &[Seq], rng: &mut TestRng, out: &mut String) {
    let seq = &alts[rng.below(alts.len() as u64) as usize];
    for (atom, min, max) in seq {
        let n = min + rng.below((max - min + 1) as u64) as u32;
        for _ in 0..n {
            gen_atom(atom, rng, out);
        }
    }
}

fn gen_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Dot => out.push((0x20 + rng.below(0x5f) as u8) as char),
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| span(*lo, *hi)).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let s = span(*lo, *hi);
                if pick < s {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid range"));
                    return;
                }
                pick -= s;
            }
            unreachable!("pick within total");
        }
        Atom::Group(alts) => gen_alts(alts, rng, out),
    }
}

fn span(lo: char, hi: char) -> u64 {
    (hi as u64) - (lo as u64) + 1
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::TestRng;

    fn sample(pattern: &str, seed: u64) -> String {
        pattern
            .generate(&mut TestRng::new(seed))
            .expect("string strategies never filter")
    }

    #[test]
    fn domain_name_pattern_generates_valid_names() {
        let pat = "[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,2}";
        for seed in 0..200 {
            let s = sample(pat, seed);
            assert!(!s.is_empty());
            for label in s.split('.') {
                assert!(!label.is_empty() && label.len() <= 12, "{s:?}");
                assert!(
                    label
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                    "{s:?}"
                );
            }
            assert!(s.split('.').count() <= 3, "{s:?}");
        }
    }

    #[test]
    fn exact_repeats_and_alternation() {
        for seed in 0..50 {
            let s = sample("(ab|cd){2}x?", seed);
            assert!(s.starts_with("ab") || s.starts_with("cd"), "{s:?}");
            let trimmed = s.trim_end_matches('x');
            assert_eq!(trimmed.len(), 4, "{s:?}");
        }
    }

    #[test]
    fn literal_passthrough() {
        assert_eq!(sample("hello", 1), "hello");
        assert_eq!(sample("a\\.b", 9), "a.b");
    }
}
