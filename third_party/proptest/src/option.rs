//! `option::of`: sometimes-`None` wrapper strategy.

use crate::strategy::Strategy;
use crate::TestRng;

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
        // Match upstream's default: None about a quarter of the time.
        if rng.below(4) == 0 {
            Some(None)
        } else {
            self.inner.generate(rng).map(Some)
        }
    }
}
