//! Workspace-local stand-in for the `bytes` crate: just the [`BufMut`]
//! writer interface the wire codec appends through, implemented for
//! `Vec<u8>`. Multi-byte integers are written big-endian, matching the
//! real crate's `put_u16`/`put_u32`/`put_u64`.

pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v)
    }
    fn put_u16(&mut self, v: u16) {
        (**self).put_u16(v)
    }
    fn put_u32(&mut self, v: u32) {
        (**self).put_u32(v)
    }
    fn put_u64(&mut self, v: u64) {
        (**self).put_u64(v)
    }
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0x01);
        v.put_u16(0x0203);
        v.put_u32(0x0405_0607);
        v.put_u64(0x0809_0a0b_0c0d_0e0f);
        v.put_slice(&[0xff]);
        assert_eq!(
            v,
            [1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0xff]
        );
    }
}
