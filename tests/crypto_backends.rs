//! The batch-verification invisibility gate: deferred network-wide
//! batch verification is a *scheduling* optimization, never a semantic
//! one. For every crypto backend and every executor, a run with the
//! per-tick batch drain enabled must be byte-identical — fingerprint
//! and rendered trace stream — to the same run verifying inline.
//!
//! The scenarios are chosen to cross every verdict path: honest traffic
//! (all-valid triples), forged signatures (invalid triples from a
//! black-hole route forger), wrong-key presentations (an impersonator
//! whose proofs die at the CGA check, exercising the prefetch
//! short-circuit), and eviction thrash (a 2-entry verify cache, so the
//! cache↔batch-table handoff churns all run long).

use manet_crypto::BackendKind;
use manet_secure::scenario::{Placement, ScenarioBuilder, SecureBuilder};
use manet_secure::{attacks, Behavior, RunReport};
use manet_sim::{ExecMode, SimDuration};
use proptest::prelude::*;

const BACKENDS: [BackendKind; 3] = [BackendKind::Rsa, BackendKind::Null, BackendKind::HashSig];
const EXECS: [ExecMode; 4] = [
    ExecMode::Single,
    ExecMode::Sharded(1),
    ExecMode::Sharded(4),
    ExecMode::Sharded(8),
];

/// Everything observable from one run, plus the batch counters (only
/// meaningful on the batched side — asserted, never compared).
struct Observed {
    fingerprint: RunReport,
    events: u64,
    trace: String,
    batch_requests: u64,
    batch_executed: u64,
}

fn observe(builder: SecureBuilder, flows: &[(usize, usize)], packets: usize) -> Observed {
    let mut net = builder.build();
    assert!(net.bootstrap(), "bootstrap failed");
    let report = net.run_flows(flows, packets, SimDuration::from_millis(300));
    let stats = net.batch.as_ref().map(|b| b.stats()).unwrap_or_default();
    Observed {
        fingerprint: report.fingerprint(),
        events: net.engine.events_processed(),
        trace: net.engine.tracer().render(),
        batch_requests: stats.requests,
        batch_executed: stats.executed,
    }
}

/// Run one scenario batched and inline and demand byte-identity.
/// `shape` builds the scenario (including the executor, which is a
/// pre-`.secure()` knob) minus the backend/batch toggles, so both sides
/// are constructed from the same spec.
fn assert_invisible(
    label: &str,
    backend: BackendKind,
    exec: ExecMode,
    flows: &[(usize, usize)],
    packets: usize,
    shape: impl Fn(ExecMode) -> SecureBuilder,
) -> Observed {
    let side = |batch: bool| {
        observe(
            shape(exec).crypto_backend(backend).batch_verify(batch),
            flows,
            packets,
        )
    };
    let batched = side(true);
    let inline = side(false);
    assert_eq!(
        batched.trace, inline.trace,
        "{label} [{backend:?}/{exec:?}]: trace streams diverged batched vs inline"
    );
    assert_eq!(
        (&batched.fingerprint, batched.events),
        (&inline.fingerprint, inline.events),
        "{label} [{backend:?}/{exec:?}]: observables diverged batched vs inline"
    );
    assert_eq!(
        inline.batch_requests, 0,
        "{label}: inline run owns no batch table yet it saw requests"
    );
    assert!(
        batched.batch_requests > 0,
        "{label} [{backend:?}/{exec:?}]: prefetch never fed the batch — vacuous differential"
    );
    batched
}

fn chain(seed: u64, exec: ExecMode) -> SecureBuilder {
    ScenarioBuilder::new()
        .hosts(5)
        .seed(seed)
        .trace(true)
        .exec(exec)
        .secure()
}

fn grid(seed: u64, exec: ExecMode, attackers: Vec<(usize, Behavior)>) -> SecureBuilder {
    ScenarioBuilder::new()
        .hosts(11)
        .placement(Placement::Grid {
            cols: 4,
            spacing: 180.0,
        })
        .seed(seed)
        .trace(true)
        .exec(exec)
        .adversaries(attackers)
        .secure()
}

/// Honest traffic, the full backend × executor cross. Also the
/// amortization witness: batching must *execute* fewer backend ops than
/// it was asked for (network-wide dedup), or the whole exercise is a
/// detour.
#[test]
fn honest_traffic_identical_across_backends_and_executors() {
    for backend in BACKENDS {
        for exec in EXECS {
            let batched = assert_invisible("honest", backend, exec, &[(0, 4), (1, 3)], 4, |e| {
                chain(42, e)
            });
            assert!(
                batched.batch_executed < batched.batch_requests,
                "[{backend:?}/{exec:?}] no dedup: {} executed of {} requested",
                batched.batch_executed,
                batched.batch_requests
            );
        }
    }
}

/// Forged signatures (black-hole RREP forger): invalid verdicts must
/// flow through the batch table exactly as they do inline, and the
/// rejections must actually happen.
#[test]
fn forged_signatures_identical_batched_and_inline() {
    for exec in [ExecMode::Single, ExecMode::Sharded(4)] {
        let batched = assert_invisible("forged", BackendKind::Rsa, exec, &[(0, 10)], 15, |e| {
            grid(31, e, vec![(5, attacks::black_hole())])
        });
        assert!(
            batched.fingerprint.totals.rejected > 0,
            "no forgery rejected — vacuous differential"
        );
        assert!(
            batched.fingerprint.crypto.failed > 0,
            "no failing verdict reached the pipeline"
        );
    }
    // The non-RSA universes still agree with themselves.
    for backend in [BackendKind::Null, BackendKind::HashSig] {
        assert_invisible("forged", backend, ExecMode::Single, &[(0, 10)], 15, |e| {
            grid(31, e, vec![(5, attacks::black_hole())])
        });
    }
}

/// Wrong-key presentations: the impersonator's proofs carry a key that
/// fails the CGA binding, so dispatch short-circuits before any
/// signature work — and the prefetch mirror must too.
#[test]
fn wrong_key_proofs_identical_batched_and_inline() {
    let shape = |e| {
        let probe = grid(33, ExecMode::Single, vec![]).build();
        let victim_ip = probe.host_ip(10);
        drop(probe);
        grid(33, e, vec![(2, attacks::impersonator(victim_ip))])
    };
    for exec in [ExecMode::Single, ExecMode::Sharded(4)] {
        assert_invisible("wrong-key", BackendKind::Rsa, exec, &[(0, 10)], 12, shape);
    }
    for backend in [BackendKind::Null, BackendKind::HashSig] {
        assert_invisible(
            "wrong-key",
            backend,
            ExecMode::Single,
            &[(0, 10)],
            12,
            shape,
        );
    }
}

/// Eviction thrash: a 2-entry verify cache evicts constantly, so
/// verdicts keep migrating between cache, batch table, and fresh
/// executions. The cache↔batch handoff must stay invisible.
#[test]
fn eviction_thrash_identical_batched_and_inline() {
    let shape = |e| {
        chain(77, e).tune(|p| {
            p.verify_cache = true;
            p.verify_cache_capacity = 2;
        })
    };
    for backend in BACKENDS {
        for exec in [ExecMode::Single, ExecMode::Sharded(4)] {
            let batched =
                assert_invisible("thrash", backend, exec, &[(0, 4), (1, 3), (0, 3)], 4, shape);
            // A 2-entry LRU under this traffic mix is all evictions —
            // the point is the churn, so demand (not hits) is the
            // vacuousness guard.
            assert!(
                batched.fingerprint.crypto.executed > 0,
                "[{backend:?}/{exec:?}] no verification demand — thrash not exercised"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Randomized sweep over seeds, backends, and executors: whatever
    /// universe the seed produces, batching must be invisible in it.
    #[test]
    fn batched_and_inline_are_one_universe(
        seed in 0u64..256,
        backend_ix in 0usize..BACKENDS.len(),
        exec_ix in 0usize..EXECS.len(),
        cache_cap in prop_oneof![Just(2usize), Just(64), Just(1024)],
    ) {
        let backend = BACKENDS[backend_ix];
        let exec = EXECS[exec_ix];
        let shape =
            move || chain(seed, exec).tune(move |p| p.verify_cache_capacity = cache_cap);
        let side = |batch: bool| {
            observe(
                shape().crypto_backend(backend).batch_verify(batch),
                &[(0, 4), (1, 3)],
                3,
            )
        };
        let batched = side(true);
        let inline = side(false);
        prop_assert_eq!(&batched.trace, &inline.trace);
        prop_assert_eq!(
            (&batched.fingerprint, batched.events),
            (&inline.fingerprint, inline.events)
        );
        prop_assert!(batched.batch_requests > 0, "vacuous case — batch never fed");
    }
}
