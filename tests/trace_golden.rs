//! Golden-trace gate, now double duty: the fixtures under
//! `tests/golden/` were rendered from the pre-refactor monolithic
//! `node.rs`, and the universes are now built through the redesigned
//! `ScenarioBuilder` — so a pass proves the layered node stack, the
//! verify cache, *and* the scenario-API redesign all left the byte-exact
//! trace stream untouched. Any divergence is a determinism regression,
//! not a formatting nit.
//!
//! Regenerate (only for an *intentional* protocol change) with:
//! `UPDATE_GOLDEN=1 cargo test --test trace_golden`

use manet_crypto::BackendKind;
use manet_secure::scenario::{ScenarioBuilder, Workload};
use manet_secure::{attacks, Behavior};
use manet_sim::SimDuration;

/// One deterministic universe rendered to text: the full trace stream
/// plus the headline observables (so a silent metric drift is caught
/// even if it never changes a trace line).
fn render_universe(seed: u64, attackers: Vec<(usize, Behavior)>) -> String {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(seed)
        .trace(true)
        .adversaries(attackers)
        .secure()
        // The fixtures were rendered in the RSA universe; signature
        // bytes differ per backend, so pin it against MANET_CRYPTO.
        .crypto_backend(BackendKind::Rsa)
        .build();
    net.bootstrap();
    let report = net.run(&Workload::flows(
        vec![(0, 4), (1, 3)],
        4,
        SimDuration::from_millis(300),
    ));
    let m = net.engine.metrics();
    format!(
        "seed={} events={} ctl.tx_bytes={} app.data_sent={} delivery={:.6}\n{}",
        seed,
        net.engine.events_processed(),
        m.counter("ctl.tx_bytes"),
        m.counter("app.data_sent"),
        report.delivery_or_nan(),
        net.engine.tracer().render(),
    )
}

fn check_golden(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    if expected != rendered {
        // Report the first diverging line; dumping both full streams
        // would drown the signal.
        let mismatch = expected
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (a, b))) => panic!(
                "{name}: trace diverges from pre-refactor golden at line {}:\n  golden: {a}\n  actual: {b}",
                i + 1
            ),
            None => panic!(
                "{name}: trace length changed: golden {} lines, actual {} lines",
                expected.lines().count(),
                rendered.lines().count()
            ),
        }
    }
}

#[test]
fn honest_universe_matches_pre_refactor_trace() {
    check_golden("trace_honest_seed42.txt", &render_universe(42, Vec::new()));
}

#[test]
fn attacked_universe_matches_pre_refactor_trace() {
    // A black-hole route forger on the chain: exercises the verification
    // reject paths (forged RREPs) whose verdicts the cache must preserve.
    check_golden(
        "trace_forge_seed7.txt",
        &render_universe(7, vec![(2, attacks::black_hole())]),
    );
}
