//! Integration tests for secure route discovery and maintenance
//! (Sections 3.3–3.4): multi-hop discovery, cached CREP replies, RERR on
//! link breakage, route re-discovery under mobility.

use manet_secure::scenario::{Network, Placement, ScenarioBuilder};
use manet_secure::SecureNode;
use manet_sim::{Field, Mobility, SimDuration, SimTime};

fn chain(n: usize, seed: u64) -> Network<SecureNode> {
    ScenarioBuilder::new().hosts(n).seed(seed).secure().build()
}

/// Discovered route lengths match the chain geometry exactly.
#[test]
fn discovered_routes_have_expected_length() {
    let mut net = chain(6, 20);
    assert!(net.bootstrap());
    net.run_flows(&[(0, 5)], 3, SimDuration::from_millis(400));
    let now = net.engine.now();
    let h5 = net.host_ip(5);
    let relays = net
        .host(0)
        .cached_route(&h5, now)
        .expect("route cached after flow");
    // Chain h0..h5: the relays are exactly h1..h4 in order.
    let expect: Vec<_> = (1..5).map(|i| net.host_ip(i)).collect();
    assert_eq!(relays, expect);
    assert!(net.delivery_ratio().expect("packets sent") > 0.9);
}

/// Every intermediate hop signs the SRR; the destination verifies all of
/// them, so the engine-wide relay counter matches the chain length.
#[test]
fn rreq_relays_sign_and_destination_accepts() {
    let mut net = chain(5, 21);
    assert!(net.bootstrap());
    net.run_flows(&[(0, 4)], 2, SimDuration::from_millis(400));
    let m = net.engine.metrics();
    assert!(m.counter("route.discovered") >= 1);
    assert_eq!(m.counter("sec.rreq_rejected"), 0, "honest SRRs all verify");
    assert!(
        m.counter("route.rreq_relayed") >= 3,
        "h1..h3 relayed with signatures"
    );
    assert_eq!(net.host(4).stats().rejected_rreq, 0);
}

/// A node holding a self-discovered route answers a later requester with
/// a CREP instead of letting the flood run to the destination (Figure 3).
#[test]
fn cached_route_served_as_crep() {
    let mut net = chain(6, 22);
    assert!(net.bootstrap());
    // h0 discovers a route to h5 first.
    net.run_flows(&[(0, 5)], 2, SimDuration::from_millis(400));
    let before = net.engine.metrics().counter("route.crep_sent");
    // h1's request can now be answered from h0's cache (h0 is adjacent).
    net.run_flows(&[(1, 5)], 2, SimDuration::from_millis(400));
    let m = net.engine.metrics();
    assert!(
        m.counter("route.crep_sent") > before,
        "some node served a cached route"
    );
    assert!(net.delivery_ratio().expect("packets sent") > 0.9);
    assert_eq!(m.counter("sec.crep_rejected"), 0);
}

/// Killing a relay mid-flow produces a verified RERR at the source and
/// removes the dead route from its cache.
#[test]
fn node_death_triggers_rerr_and_cache_eviction() {
    let mut net = chain(5, 23);
    assert!(net.bootstrap());
    net.run_flows(&[(0, 4)], 3, SimDuration::from_millis(300));
    assert!(
        net.delivery_ratio().expect("packets sent") > 0.9,
        "healthy before the kill"
    );

    // Kill h2 (the middle relay), then keep sending.
    let h2 = net.hosts[2];
    let kill_at = net.engine.now() + SimDuration::from_millis(50);
    net.engine.kill_at(h2, kill_at);
    net.run_flows(&[(0, 4)], 5, SimDuration::from_millis(300));

    let m = net.engine.metrics();
    assert!(m.counter("route.rerr_sent") >= 1, "h1 reported the break");
    assert_eq!(m.counter("sec.rerr_rejected"), 0, "the report verified");
    let h0 = net.host(0);
    assert!(h0.stats().data_failed > 0, "chain is partitioned now");
    let h4 = net.host_ip(4);
    assert!(
        h0.cached_route(&h4, net.engine.now()).is_none(),
        "broken route evicted"
    );
}

/// With the destination answering several RREQ copies, the source
/// accumulates alternate routes (the raw material for credit-based
/// avoidance).
#[test]
fn route_diversity_from_multiple_rreps() {
    let mut net = ScenarioBuilder::new()
        .hosts(11)
        .placement(Placement::Grid {
            cols: 4,
            spacing: 180.0,
        })
        .seed(24)
        .secure()
        .build();
    assert!(net.bootstrap());
    net.run_flows(&[(0, 10)], 3, SimDuration::from_millis(400));
    let m = net.engine.metrics();
    // rrep_multi = 3 by default: at least one extra RREP should have been
    // produced and cached beyond the first.
    assert!(
        m.counter("route.alternate_cached") >= 1,
        "alternate routes cached: {}",
        m.counter("route.alternate_cached")
    );
    assert!(net.delivery_ratio().expect("packets sent") > 0.9);
}

/// Under random-waypoint mobility the protocol keeps rediscovering and
/// keeps delivering (route maintenance end to end).
#[test]
fn mobility_rediscovery_sustains_delivery() {
    let mut net = ScenarioBuilder::new()
        .hosts(10)
        .placement(Placement::Uniform)
        .field(Field::new(700.0, 700.0))
        .mobility(Mobility::RandomWaypoint {
            min_speed: 5.0,
            max_speed: 15.0,
            pause_s: 0.5,
        })
        .seed(25)
        .secure()
        .build();
    assert!(net.bootstrap());
    let report = net.run_flows(&[(0, 9), (3, 6)], 40, SimDuration::from_millis(400));
    let ratio = report.delivery_ratio.expect("packets sent");
    assert!(
        ratio > 0.5,
        "mobile delivery ratio {ratio} too low — rediscovery broken?"
    );
}

/// Deterministic rediscovery: kill the relay on the active path in a
/// grid with an alternate path — the source re-discovers and delivery
/// continues.
#[test]
fn rediscovery_after_relay_death_with_alternate_path() {
    let mut net = ScenarioBuilder::new()
        .hosts(8)
        .placement(Placement::Grid {
            cols: 3,
            spacing: 180.0,
        })
        .seed(26)
        .secure()
        .build();
    assert!(net.bootstrap());
    net.run_flows(&[(0, 7)], 3, SimDuration::from_millis(300));
    assert!(net.delivery_ratio().expect("packets sent") > 0.9);

    // Find the relays actually in use and kill the first one.
    let dst = net.host_ip(7);
    let relays = net
        .host(0)
        .cached_route(&dst, net.engine.now())
        .expect("route in use");
    assert!(!relays.is_empty(), "grid route is multi-hop");
    let victim_idx = (0..8)
        .find(|&i| net.host_ip(i) == relays[0])
        .expect("relay is a host");
    let kill_at = net.engine.now() + SimDuration::from_millis(50);
    net.engine.kill_at(net.hosts[victim_idx], kill_at);

    let acked_before = net.host(0).stats().data_acked;
    net.run_flows(&[(0, 7)], 8, SimDuration::from_millis(400));
    let h0 = net.host(0);
    assert!(
        h0.stats().data_acked > acked_before + 4,
        "delivery resumed over an alternate path ({} → {})",
        acked_before,
        h0.stats().data_acked
    );
}

/// Data queued before any route exists is flushed once discovery
/// completes (send-buffer behaviour).
#[test]
fn send_buffer_flushes_after_discovery() {
    let mut net = chain(4, 26);
    assert!(net.bootstrap());
    // Three sends back-to-back with no route yet: one RREQ, all queued.
    let dst = net.host_ip(3);
    let src = net.hosts[0];
    net.engine.with_protocol::<SecureNode, _>(src, |n, ctx| {
        n.send_data(ctx, dst, vec![1; 32]);
        n.send_data(ctx, dst, vec![2; 32]);
        n.send_data(ctx, dst, vec![3; 32]);
    });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);
    let h0 = net.host(0);
    assert_eq!(h0.stats().data_sent, 3);
    assert_eq!(h0.stats().data_acked, 3, "all flushed and acknowledged");
    assert_eq!(
        h0.stats().rreq_sent,
        1,
        "a single discovery served all three"
    );
}

/// Discovery to an unreachable destination gives up after the configured
/// retries and fails the buffered data.
#[test]
fn unreachable_destination_fails_cleanly() {
    let mut net = chain(3, 27);
    assert!(net.bootstrap());
    // An address nobody owns.
    let ghost = manet_wire::Ipv6Addr::from_groups([0xfec0, 0, 0, 0, 1, 2, 3, 4]);
    let src = net.hosts[0];
    net.engine.with_protocol::<SecureNode, _>(src, |n, ctx| {
        n.send_data(ctx, ghost, vec![0; 16]);
    });
    let until = net.engine.now() + SimDuration::from_secs(10);
    net.engine.run_until(until);
    let h0 = net.host(0);
    assert_eq!(h0.stats().data_failed, 1);
    assert_eq!(h0.stats().data_acked, 0);
    let m = net.engine.metrics();
    assert_eq!(m.counter("route.discovery_gave_up"), 1);
    assert_eq!(
        m.counter("route.rreq_retries"),
        (h0.stats().rreq_sent - 1),
        "retries counted consistently"
    );
}

/// The same scenario and seed reproduce identical results (whole-stack
/// determinism: crypto, DAD, routing, mobility).
#[test]
fn whole_stack_is_deterministic() {
    let run = |seed: u64| {
        let mut net = chain(5, seed);
        net.bootstrap();
        net.run_flows(&[(0, 4)], 5, SimDuration::from_millis(300));
        (
            net.delivery_ratio(),
            net.engine.metrics().counter("ctl.tx_bytes"),
            (0..5).map(|i| net.host_ip(i)).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(99).1, run(99).1);
    assert_eq!(run(99).2, run(99).2);
    assert_eq!(run(99).0, run(99).0);
    assert_ne!(run(99).2, run(100).2, "different seeds, different keys");
}

/// Partition and heal, deterministically: the middle relay of a chain
/// walks out of range (routes break, delivery stops) and walks back
/// (rediscovery, delivery resumes). Exercises the full RERR → cache
/// eviction → re-discovery loop under *scripted* mobility.
#[test]
fn partition_and_heal() {
    use manet_sim::Pos;

    // Chain: DNS, h0, h1, h2 at 180 m spacing; h1 is the only bridge
    // between h0 and h2.
    let positions = vec![
        Pos::new(0.0, 0.0),   // DNS
        Pos::new(180.0, 0.0), // h0
        Pos::new(360.0, 0.0), // h1 — will wander
        Pos::new(540.0, 0.0), // h2
    ];
    let mut net = ScenarioBuilder::new()
        .hosts(3)
        .placement(Placement::Custom(positions))
        .seed(29)
        .secure()
        .build();
    assert!(net.bootstrap());
    let report = net.run_flows(&[(0, 2)], 3, SimDuration::from_millis(300));
    assert!(
        report.delivery_ratio.expect("packets sent") > 0.9,
        "healthy before the walk"
    );
    let acked_healthy = net.host(0).stats().data_acked;

    // Script h1's walk: far off-axis (breaking both links), then home.
    // Walking is slow; run the engine while it happens.
    let h1 = net.hosts[1];
    let away = Pos::new(360.0, 800.0);
    let home = Pos::new(360.0, 0.0);
    net.engine.set_position(h1, away); // teleport = instant partition
    let t = net.engine.now() + SimDuration::from_secs(1);
    net.engine.run_until(t);
    assert!(!net.engine.is_connected(), "h1's absence splits the chain");

    net.run_flows(&[(0, 2)], 4, SimDuration::from_millis(300));
    let acked_partitioned = net.host(0).stats().data_acked;
    assert!(
        acked_partitioned - acked_healthy <= 1,
        "partition must stop (almost) all delivery"
    );
    assert!(net.host(0).stats().data_failed > 0);

    // Heal and resume.
    net.engine.set_position(h1, home);
    let t = net.engine.now() + SimDuration::from_secs(1);
    net.engine.run_until(t);
    assert!(net.engine.is_connected());
    net.run_flows(&[(0, 2)], 5, SimDuration::from_millis(300));
    let acked_healed = net.host(0).stats().data_acked;
    assert!(
        acked_healed >= acked_partitioned + 4,
        "delivery resumed after healing ({acked_partitioned} → {acked_healed})"
    );
}

/// Marginal links (gray-zone radio): floods leak across the gray band
/// probabilistically, but unicast forwarding stays on reliable links, so
/// the protocol still delivers and never mis-verifies.
#[test]
fn gray_zone_radio_degrades_gracefully() {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(30)
        .radio(manet_sim::RadioConfig {
            range: 250.0,
            loss: 0.02,
            gray_zone: Some(400.0), // chain spacing 180: 2-hop neighbors sit at 360, inside the band
            ..manet_sim::RadioConfig::default()
        })
        .secure()
        .build();
    assert!(net.bootstrap(), "bootstrap survives marginal links");
    let report = net.run_flows(&[(0, 4)], 12, SimDuration::from_millis(300));
    let ratio = report.delivery_ratio.expect("packets sent");
    assert!(ratio > 0.8, "delivery {ratio} with gray-zone floods");
    let m = net.engine.metrics();
    // Some broadcasts genuinely died in the gray band…
    assert!(m.counter("phy.rx_dropped_loss") > 0);
    // …but nothing ever failed verification (noise ≠ forgery).
    assert_eq!(m.counter("sec.rreq_rejected"), 0);
    assert_eq!(m.counter("sec.rrep_rejected"), 0);
}

/// run_until with nothing to do still advances the clock (regression
/// guard for harness loops that interleave sends with time).
#[test]
fn idle_time_advances() {
    let mut net = chain(2, 28);
    assert!(net.bootstrap());
    let t0 = net.engine.now();
    let target = t0 + SimDuration::from_secs(30);
    net.engine.run_until(target);
    assert_eq!(net.engine.now(), target);
    assert!(net.engine.now() > SimTime::ZERO);
}
