//! Scale and stress tests: larger networks, mixed attacker populations,
//! long runs, churn. These guard against emergent breakage that small
//! deterministic topologies cannot expose (flood storms, dedup-table
//! growth, buffer exhaustion, cross-flow interference).

use manet_secure::scenario::{scale_family, Placement, ScenarioBuilder, Workload};
use manet_secure::{attacks, SecureNode};
use manet_sim::{ChannelMode, Field, Mobility, SimDuration, SimTime};

/// A 24-host grid bootstraps completely and carries eight simultaneous
/// flows with high delivery.
#[test]
fn large_grid_bootstrap_and_traffic() {
    let mut net = ScenarioBuilder::new()
        .hosts(24)
        .placement(Placement::Grid {
            cols: 5,
            spacing: 170.0,
        })
        .seed(80)
        .secure()
        .build();
    assert!(net.bootstrap(), "all 24 hosts ready");
    assert!(net.engine.is_connected(), "grid must be one component");

    let dns = net.dns_node().dns_state().expect("dns");
    assert_eq!(dns.name_count(), 24, "every name committed");

    let flows = [
        (0, 23),
        (23, 0),
        (3, 20),
        (7, 16),
        (12, 1),
        (5, 22),
        (9, 14),
        (18, 2),
    ];
    let report = net.run_flows(&flows, 8, SimDuration::from_millis(400));
    let ratio = report.delivery_ratio.expect("packets sent");
    assert!(ratio > 0.9, "delivery {ratio} under 8-flow load");
    // Every destination actually received data.
    for &(_, dst) in &flows {
        assert!(net.host(dst).stats().data_received > 0, "h{dst} starved");
    }
}

/// A quarter of the network is hostile (mixed attacker types); the
/// honest majority keeps communicating.
#[test]
fn mixed_attacker_population() {
    let mut net = ScenarioBuilder::new()
        .hosts(15)
        .placement(Placement::Grid {
            cols: 4,
            spacing: 170.0,
        })
        .seed(81)
        .adversaries(vec![
            (5, attacks::black_hole()),
            (9, attacks::grey_hole(0.6)),
            (11, attacks::rerr_forger()),
            (13, attacks::replayer()),
        ])
        .secure()
        .build();
    assert!(net.bootstrap(), "attackers do not block bootstrap");
    let flows = [(0, 14), (2, 12), (6, 10)];
    let report = net.run_flows(&flows, 12, SimDuration::from_millis(350));
    let ratio = report.delivery_ratio.expect("packets sent");
    assert!(
        ratio > 0.6,
        "honest traffic survives a 4/15 hostile population (got {ratio})"
    );
}

/// Nodes keep joining while traffic is already flowing: late joiners
/// bootstrap against a busy network and become reachable.
#[test]
fn late_joiners_under_traffic() {
    let mut net = ScenarioBuilder::new().hosts(6).seed(82).secure().build();
    assert!(net.bootstrap());
    // Keep a flow running in the background.
    net.run_flows(&[(0, 3)], 5, SimDuration::from_millis(300));

    // Add two late joiners next to the end of the chain.
    let cfg = manet_secure::ProtocolConfig::default();
    let dns_pk = net.dns_node().public_key().clone();
    let base = net.engine.position(net.hosts[5]);
    let mut new_ids = Vec::new();
    for i in 0..2 {
        let node = SecureNode::new(
            cfg.clone(),
            dns_pk.clone(),
            Some(manet_wire::DomainName::new(&format!("late{i}.manet")).unwrap()),
            net.engine.rng(),
        );
        let join_at = net.engine.now() + SimDuration::from_millis(200 + 1_200 * i as u64);
        let id = net.engine.add_node_at(
            Box::new(node),
            manet_sim::Pos::new(base.x + 150.0 * (i as f64 + 1.0), base.y + 20.0),
            Mobility::Static,
            join_at,
        );
        new_ids.push(id);
    }
    // More traffic while they join.
    net.run_flows(&[(0, 3), (1, 4)], 10, SimDuration::from_millis(350));

    for &id in &new_ids {
        let n = net.engine.protocol_as::<SecureNode>(id);
        assert!(n.is_ready(), "late joiner completed DAD under load");
    }
    // And they are actually reachable: route a flow to the first one.
    let late_ip = net.engine.protocol_as::<SecureNode>(new_ids[0]).ip();
    let src = net.hosts[0];
    net.engine.with_protocol::<SecureNode, _>(src, |n, ctx| {
        n.send_data(ctx, late_ip, vec![0x77; 32]);
    });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);
    let late = net.engine.protocol_as::<SecureNode>(new_ids[0]);
    assert!(late.stats().data_received > 0, "late joiner reachable");
}

/// The `scale` scenario family end-to-end at test size: uniform
/// placement at the target density, churn kills fire, flows picked from
/// the largest component actually deliver, and the whole thing is a
/// pure function of the seed.
#[test]
fn scale_family_smoke() {
    let run = |channel| {
        let mut net = scale_family(150, 5)
            // One extra kill over the preset's n/50 so the count stays a
            // distinctive assertion target.
            .churn(4, (SimTime(4_000_000), SimTime(10_000_000)))
            .channel(channel)
            .plain()
            .build();
        net.engine.run_until(SimTime(1_000_000));
        let deg = net.mean_degree().expect("alive hosts");
        assert!(
            (8.0..25.0).contains(&deg),
            "density off target: mean degree {deg}"
        );
        let flows = net.scale_flows(5);
        assert_eq!(flows.len(), 5);
        net.run(&Workload::flows(flows, 3, SimDuration::from_millis(400)));
        // Run past the end of the churn window so every kill fires.
        net.engine.run_until(SimTime(11_000_000));
        assert_eq!(
            net.engine.metrics().counter("sim.nodes_killed"),
            4,
            "churn kills must all fire inside the run window"
        );
        let ratio = net.delivery_ratio().expect("packets sent");
        assert!(
            ratio > 0.5,
            "scale delivery ratio {ratio} too low for an in-component flow set"
        );
        (
            ratio,
            net.engine.metrics().counter("phy.rx_frames"),
            net.engine.events_processed(),
        )
    };
    let grid = run(ChannelMode::Grid);
    // Differential: the linear oracle sees the identical universe.
    assert_eq!(grid, run(ChannelMode::Linear));
}

/// Long-duration mobile run: an hour of simulated time with periodic
/// traffic — guards against state leaks (dedup sets, pending maps) that
/// only bite over time, and exercises route expiry + rediscovery.
#[test]
fn long_running_mobile_network() {
    let mut net = ScenarioBuilder::new()
        .hosts(8)
        .placement(Placement::Uniform)
        .field(Field::new(500.0, 500.0))
        .mobility(Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 5.0,
            pause_s: 5.0,
        })
        .seed(83)
        .secure()
        .build();
    assert!(net.bootstrap());
    // 20 rounds of sparse traffic across ~40 minutes of sim time: routes
    // expire (60 s TTL) between rounds, forcing rediscovery every time.
    for round in 0..20 {
        let flows = [(round % 8, (round + 4) % 8)];
        net.run_flows(&flows, 2, SimDuration::from_millis(400));
        let idle = net.engine.now() + SimDuration::from_secs(110);
        net.engine.run_until(idle);
    }
    let ratio = net.delivery_ratio().expect("packets sent");
    assert!(ratio > 0.6, "long-run delivery {ratio}");
    let m = net.engine.metrics();
    assert!(
        m.counter("route.rreq_originated") >= 20,
        "route expiry forced rediscovery each round"
    );
}
