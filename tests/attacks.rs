//! The Section 4 attack matrix, executable: each attack is run against
//! plain DSR (which collapses) and against the secure protocol (which
//! holds). These tests are the qualitative claims of the paper turned
//! into assertions; the `tables` binary (exhibit E3) prints the same
//! scenarios as a table.

use manet_secure::attacks;
use manet_secure::scenario::{
    Placement, PlainBuilder, ScenarioBuilder, SecureBuilder, BYPASS_ATTACKER,
};
use manet_sim::SimDuration;

fn grid_secure(seed: u64, attackers: Vec<(usize, manet_secure::Behavior)>) -> SecureBuilder {
    ScenarioBuilder::new()
        .hosts(11)
        .placement(Placement::Grid {
            cols: 4,
            spacing: 180.0,
        })
        .seed(seed)
        .adversaries(attackers)
        .secure()
}

fn grid_plain(seed: u64, attackers: Vec<(usize, manet_secure::Behavior)>) -> PlainBuilder {
    ScenarioBuilder::new()
        .hosts(12)
        .placement(Placement::Grid {
            cols: 4,
            spacing: 180.0,
        })
        .seed(seed)
        .adversaries(attackers)
        .plain()
}

/// Black hole (route attraction + data swallowing).
///
/// Plain DSR: the forged RREP is indistinguishable from a real one, the
/// attacker attracts the flow, delivery collapses.
/// Secure: the forged RREP cannot carry the destination's signature —
/// the source rejects it and uses genuinely discovered routes.
#[test]
fn black_hole_collapses_plain_but_not_secure() {
    // Plain: attacker at host 5 (on the natural diagonal path 0→11).
    let mut plain = grid_plain(31, vec![(5, attacks::black_hole())]).build();
    let plain_report = plain.run_flows(&[(0, 11)], 15, SimDuration::from_millis(300));
    let plain_ratio = plain_report.delivery_ratio.expect("packets sent");

    // Secure: same grid shape, attacker at host 5 of 11 (+ DNS).
    let mut secure = grid_secure(31, vec![(5, attacks::black_hole())]).build();
    assert!(secure.bootstrap());
    let secure_report = secure.run_flows(&[(0, 10)], 15, SimDuration::from_millis(300));
    let secure_ratio = secure_report.delivery_ratio.expect("packets sent");

    assert!(
        plain_ratio < 0.4,
        "plain DSR should collapse under a black hole (got {plain_ratio})"
    );
    assert!(
        secure_ratio > 0.8,
        "secure protocol should sustain delivery (got {secure_ratio})"
    );
    // The defense was cryptographic: forged RREPs were produced and
    // rejected.
    let atk = secure.host(5);
    assert!(atk.stats().atk_forged_rrep > 0, "attacker actually forged");
    assert!(
        secure.engine.metrics().counter("sec.rrep_rejected") > 0,
        "forgeries were rejected by verification"
    );
}

/// Impersonation: the attacker claims the victim's address.
///
/// Plain DSR: the attacker simply answers for the victim and receives
/// the victim's traffic.
/// Secure: claiming the address requires a key with `H(PK, rn)` equal to
/// its interface ID — the forged RREP fails the CGA check.
#[test]
fn impersonation_steals_traffic_only_in_plain() {
    // Plain: attacker (host 2, near the source) impersonates host 11.
    let plain = grid_plain(32, vec![]).build();
    let victim_ip = plain.host_ip(11);
    drop(plain);
    let mut plain = grid_plain(32, vec![(2, attacks::impersonator(victim_ip))]).build();
    assert_eq!(plain.host_ip(11), victim_ip, "same seed, same addresses");
    plain.run_flows(&[(0, 11)], 12, SimDuration::from_millis(300));
    let stolen = plain.host(2).stats().data_received;
    assert!(
        stolen > 0,
        "plain impersonator should receive the victim's traffic"
    );

    // Secure: need the victim's address first; same trick with one
    // throwaway build (addresses are seed-deterministic).
    let probe = grid_secure(33, vec![]).build();
    let victim_ip = probe.host_ip(10);
    drop(probe);
    let mut secure = grid_secure(33, vec![(2, attacks::impersonator(victim_ip))]).build();
    assert_eq!(secure.host_ip(10), victim_ip);
    assert!(secure.bootstrap());
    let report = secure.run_flows(&[(0, 10)], 12, SimDuration::from_millis(300));
    let atk = secure.host(2);
    assert_eq!(
        atk.stats().data_received,
        0,
        "secure impersonator must never receive victim traffic"
    );
    assert!(
        secure.host(10).stats().data_received > 0,
        "the real victim keeps receiving"
    );
    assert!(report.delivery_ratio.expect("packets sent") > 0.8);
}

/// Replayed RREP: a relay captures a valid reply and replays it into a
/// later discovery. The fresh sequence number (covered by the
/// destination's signature) makes the stale reply rejectable.
#[test]
fn replayed_rrep_rejected_by_sequence_binding() {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(34)
        .adversary(2, attacks::replayer())
        .secure()
        // Rejection hinges on the *signature* over the stale sequence
        // number; the no-op Null backend would accept the replay.
        .crypto_backend(manet_crypto::BackendKind::Rsa)
        .tune(|p| {
            // Short route lifetime forces a second discovery, giving the
            // replayer its window.
            p.route_ttl = SimDuration::from_secs(2);
        })
        .build();
    assert!(net.bootstrap());
    // First discovery + flow; the replayer (a relay) records the RREP.
    net.run_flows(&[(0, 4)], 2, SimDuration::from_millis(300));
    // Let the route expire, then rediscover: the replayer now answers
    // with the captured (stale) reply before the genuine one returns.
    let idle = net.engine.now() + SimDuration::from_secs(3);
    net.engine.run_until(idle);
    let report = net.run_flows(&[(0, 4)], 3, SimDuration::from_millis(300));

    let atk = net.host(2);
    assert!(atk.stats().atk_replayed > 0, "replayer actually replayed");
    let h0 = net.host(0);
    assert!(
        h0.stats().rejected_rrep > 0,
        "stale replies rejected at the source"
    );
    assert!(
        report.delivery_ratio.expect("packets sent") > 0.8,
        "genuine replies still served"
    );
}

/// Forged-RERR spam: the reports are *honestly signed* (the attacker is
/// on the route), so they verify — the defense is the Section 3.4
/// frequency threshold, which marks the reporter as hostile.
#[test]
fn rerr_spammer_identified_by_frequency_tracking() {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(35)
        .adversary(2, attacks::rerr_forger())
        .secure()
        .build();
    assert!(net.bootstrap());
    net.run_flows(&[(0, 4)], 10, SimDuration::from_millis(300));

    let atk_ip = net.host_ip(2);
    let atk = net.host(2);
    assert!(atk.stats().atk_spam_rerr >= 3, "spammer kept reporting");
    let h0 = net.host(0);
    assert_eq!(h0.stats().rejected_rerr, 0, "spam *verifies* (honest sig)");
    assert!(
        h0.credits().hostile_hosts().contains(&atk_ip),
        "frequency threshold marked the spammer hostile"
    );
}

/// Grey hole with credit management (Section 3.4), on the deterministic
/// bypass topology: the shortest route runs through the dropper, a
/// two-relay detour exists. With credits the source shifts to the detour
/// after a few ack timeouts; without them it stays on the short, dead
/// path.
#[test]
fn credits_route_around_data_dropper() {
    let run = |credits_on: bool| {
        let mut net = ScenarioBuilder::new()
            .hosts(5)
            .placement(Placement::Bypass)
            .seed(36)
            .adversary(BYPASS_ATTACKER, attacks::data_dropper())
            .secure()
            .tune(|p| p.credit.enabled = credits_on)
            .build();
        assert!(net.bootstrap());
        let report = net.run_flows(&[(0, 2)], 30, SimDuration::from_millis(350));
        (
            report.delivery_ratio.expect("packets sent"),
            net.host(BYPASS_ATTACKER).stats().atk_data_dropped,
            net.host(0).credits().credit(&net.host_ip(BYPASS_ATTACKER)),
        )
    };
    let (with_credits, dropped_on, credit_on) = run(true);
    let (without_credits, dropped_off, _) = run(false);
    assert!(dropped_on > 0, "attacker engaged in the credits-on run");
    assert!(dropped_off > 0, "attacker engaged in the credits-off run");
    assert!(
        with_credits > without_credits + 0.3,
        "credits must improve delivery: with={with_credits} without={without_credits}"
    );
    assert!(
        with_credits > 0.7,
        "credit-based avoidance should recover most traffic (got {with_credits})"
    );
    // And the dropper is identifiable: strictly negative credit.
    assert!(
        credit_on < 0,
        "dropper's credit should be negative (got {credit_on})"
    );
}

/// Sanity: an all-honest network of the same shape delivers ~everything,
/// so the attack numbers above are attributable to the attacker.
#[test]
fn honest_grid_baseline_delivers() {
    let mut secure = grid_secure(38, vec![]).build();
    assert!(secure.bootstrap());
    let report = secure.run_flows(&[(0, 10)], 15, SimDuration::from_millis(300));
    assert!(report.delivery_ratio.expect("packets sent") > 0.9);

    let mut plain = grid_plain(38, vec![]).build();
    let report = plain.run_flows(&[(0, 11)], 15, SimDuration::from_millis(300));
    assert!(report.delivery_ratio.expect("packets sent") > 0.9);
}

/// Malformed frames (fuzz-shaped garbage) are dropped without panicking
/// anywhere in the stack.
#[test]
fn garbage_frames_are_ignored() {
    use manet_sim::{Engine, EngineConfig, Mobility, Pos};
    use rand::RngCore;

    let mut net = ScenarioBuilder::new().hosts(2).seed(39).secure().build();
    assert!(net.bootstrap());

    // A raw node that spews random bytes at everyone.
    struct Fuzzer;
    impl manet_sim::Protocol for Fuzzer {
        fn on_start(&mut self, ctx: &mut manet_sim::Ctx) {
            for len in [0usize, 1, 16, 17, 40, 200] {
                let mut junk = vec![0u8; len];
                ctx.rng().fill_bytes(&mut junk);
                ctx.broadcast(junk);
            }
        }
        fn on_frame(&mut self, _: &mut manet_sim::Ctx, _: manet_sim::NodeId, _: &[u8]) {}
        fn on_timer(&mut self, _: &mut manet_sim::Ctx, _: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    // Place the fuzzer inside the existing network's engine.
    let pos = net.engine.position(net.hosts[0]);
    net.engine.add_node_at(
        Box::new(Fuzzer),
        Pos::new(pos.x + 10.0, pos.y),
        Mobility::Static,
        net.engine.now(),
    );
    let until = net.engine.now() + SimDuration::from_secs(2);
    net.engine.run_until(until); // must not panic
    assert!(net.engine.metrics().counter("rx.malformed") > 0);

    // And the network still works afterwards.
    let report = net.run_flows(&[(0, 1)], 3, SimDuration::from_millis(300));
    assert!(report.delivery_ratio.expect("packets sent") > 0.9);

    // Keep the unused-import lint honest.
    let _ = EngineConfig::default();
    let _: Option<Engine> = None;
}

/// The verify cache must not open a forgery hole: with memoization on
/// (the default), forged RREPs are still produced and still rejected,
/// and delivery still holds — while honest repeated proofs do hit the
/// cache. A "poisoning" attack — getting an attacker's material served
/// from a cached-valid verdict — is structurally impossible because the
/// cache key digests the whole (key, payload, signature) triple, but
/// this regression pins the end-to-end consequence: cached runs reject
/// exactly what uncached runs reject.
#[test]
fn forged_proofs_rejected_identically_with_and_without_verify_cache() {
    let run = |cache: bool| {
        let mut net = grid_secure(31, vec![(5, attacks::black_hole())])
            .tune(|p| p.verify_cache = cache)
            .build();
        assert!(net.bootstrap());
        let report = net.run_flows(&[(0, 10)], 15, SimDuration::from_millis(300));
        let m = net.engine.metrics();
        (
            report.delivery_ratio,
            m.counter("sec.rrep_rejected"),
            m.counter("sec.verify_failed"),
            net.engine.events_processed(),
            report.crypto,
        )
    };
    let cached = run(true);
    let uncached = run(false);

    // Same universe, same verdicts: every observable agrees except the
    // execution split between real RSA runs and cache hits.
    assert_eq!(cached.0, uncached.0, "delivery diverged");
    assert_eq!(cached.1, uncached.1, "rejected-RREP counts diverged");
    assert_eq!(cached.2, uncached.2, "failed-verdict counts diverged");
    assert_eq!(cached.3, uncached.3, "event streams diverged");
    let (c, u) = (cached.4, uncached.4);
    assert_eq!(
        c.executed + c.cached,
        u.executed,
        "verification demand diverged"
    );
    assert_eq!(u.cached, 0, "cache disabled yet verdicts served from it");
    assert_eq!(c.failed, u.failed, "pipeline failure counts diverged");

    // The attack actually exercised both sides: forgeries were rejected
    // (failed verdicts observed) and the cache actually memoized.
    assert!(cached.1 > 0, "no forged RREP was rejected — vacuous test");
    assert!(c.failed > 0, "no failing verification reached the pipeline");
    assert!(c.cached > 0, "cache never hit — vacuous differential");
    assert!(
        cached.0.expect("packets sent") > 0.8,
        "secure delivery should hold under attack"
    );
}

/// Sharper poisoning attempt at the unit of the cache itself: the same
/// signing payload first verifies validly (and is cached), then an
/// attacker presents the same payload under its own key/signature. The
/// forged presentation must be rejected — a cached `valid` verdict for
/// the honest triple must never be served for the forged one.
#[test]
fn cached_valid_verdict_never_serves_a_forgery() {
    use manet_crypto::VerifyCache;
    use manet_secure::{verify_proof, HostIdentity};
    use manet_wire::{sigdata, Challenge, IdentityProof};
    use rand::SeedableRng;

    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(99);
    let honest = HostIdentity::generate(512, &mut rng);
    let attacker = HostIdentity::generate(512, &mut rng);
    let payload = sigdata::arep(&honest.ip(), Challenge(7));

    let mut cache = VerifyCache::new(64);
    let good = honest.prove(&payload);
    // Honest proof verifies and is memoized.
    let (r1, _) =
        manet_secure::identity::verify_proof_with(&honest.ip(), &payload, &good, Some(&mut cache));
    assert!(r1.is_ok());

    // Attacker signs the same payload with its own key but claims the
    // honest address: CGA check kills it, cache never consulted for RSA.
    let forged_cga = IdentityProof {
        pk: attacker.public().clone(),
        rn: attacker.rn(),
        sig: attacker.sign(&payload),
    };
    let (r2, _) = manet_secure::identity::verify_proof_with(
        &honest.ip(),
        &payload,
        &forged_cga,
        Some(&mut cache),
    );
    assert!(
        r2.is_err(),
        "wrong-key proof must fail CGA despite cached payload"
    );

    // Attacker splices the honest key material with its own signature:
    // passes CGA, but the signature digest differs, so the cached-valid
    // entry cannot be aliased.
    let spliced = IdentityProof {
        pk: good.pk.clone(),
        rn: good.rn,
        sig: attacker.sign(&payload),
    };
    let (r3, _) = manet_secure::identity::verify_proof_with(
        &honest.ip(),
        &payload,
        &spliced,
        Some(&mut cache),
    );
    assert!(
        r3.is_err(),
        "spliced signature must be rejected, not cache-hit"
    );

    // And the cached path still agrees with the pure path everywhere.
    assert_eq!(verify_proof(&honest.ip(), &payload, &good), Ok(()));
    assert!(verify_proof(&honest.ip(), &payload, &spliced).is_err());
}
