//! Integration tests for secure bootstrapping (Section 3.1):
//! address autoconfiguration, duplicate detection, name conflicts, and
//! the DAD-squatting attack.

use manet_crypto::KeyPair;
use manet_secure::scenario::{host_name, Placement, ScenarioBuilder};
use manet_secure::{attacks, HostIdentity, ProtocolConfig, SecureNode};
use manet_sim::{Engine, EngineConfig, Mobility, Pos, RadioConfig, SimTime};
use manet_wire::DomainName;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn chain_engine(seed: u64) -> Engine {
    Engine::new(EngineConfig {
        seed,
        radio: RadioConfig {
            loss: 0.0,
            ..RadioConfig::default()
        },
        ..EngineConfig::default()
    })
}

/// Two hosts sharing a key pair and modifier generate the same CGA; the
/// second one to join must detect the collision via a verified AREP and
/// re-roll its modifier (Figure 2's core exchange).
#[test]
fn genuine_collision_detected_and_rerolled() {
    let cfg = ProtocolConfig::default();
    let mut engine = chain_engine(42);

    let dns = SecureNode::new_dns(cfg.clone(), Vec::new(), engine.rng());
    let dns_pk = dns.public_key().clone();

    // Same seed → same key pair; same rn → same address.
    let kp_a = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(777));
    let kp_b = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(777));
    let mut ident_a = HostIdentity::from_keypair(kp_a, engine.rng());
    let mut ident_b = HostIdentity::from_keypair(kp_b, engine.rng());
    ident_a.set_rn(0xC011);
    ident_b.set_rn(0xC011);
    assert_eq!(ident_a.ip(), ident_b.ip(), "collision constructed");
    let shared_ip = ident_a.ip();

    let node_a = SecureNode::with_identity(
        cfg.clone(),
        ident_a,
        dns_pk.clone(),
        Some(DomainName::new("a.manet").unwrap()),
        Default::default(),
    );
    let node_b = SecureNode::with_identity(
        cfg.clone(),
        ident_b,
        dns_pk,
        Some(DomainName::new("b.manet").unwrap()),
        Default::default(),
    );

    engine.add_node(Box::new(dns), Pos::new(0.0, 0.0), Mobility::Static);
    let a = engine.add_node(Box::new(node_a), Pos::new(180.0, 0.0), Mobility::Static);
    // B joins after A is established and within radio range of A.
    let b = engine.add_node_at(
        Box::new(node_b),
        Pos::new(360.0, 0.0),
        Mobility::Static,
        SimTime(2_000_000),
    );
    engine.run_until(SimTime(8_000_000));

    let na = engine.protocol_as::<SecureNode>(a);
    let nb = engine.protocol_as::<SecureNode>(b);
    assert!(na.is_ready() && nb.is_ready());
    assert_eq!(na.ip(), shared_ip, "first claimant keeps the address");
    assert_ne!(nb.ip(), shared_ip, "second claimant re-rolled");
    assert_eq!(nb.stats().collisions_detected, 1);
    assert_eq!(nb.stats().dad_attempts, 2);
    // The owner answers each probe retransmission it hears (distinct
    // seq), all for the same collision.
    assert!(na.stats().arep_sent >= 1);
}

/// A DAD squatter answers every AREQ claiming the announced address, but
/// cannot exhibit a key hashing to it: joiners reject the forged AREPs
/// and keep their addresses — the paper's "can not arbitrarily claim the
/// ownership of an IP address".
#[test]
fn dad_squatter_cannot_deny_addresses() {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .adversary(0, attacks::dad_squatter())
        .seed(11)
        .secure()
        .build();
    assert!(net.bootstrap());
    let squatter = net.host(0);
    assert!(squatter.stats().atk_forged_arep > 0, "squatter was active");
    for i in 1..5 {
        let n = net.host(i);
        assert!(n.is_ready());
        assert_eq!(
            n.stats().dad_attempts,
            1,
            "h{i} kept its first address despite squatting"
        );
        assert!(
            n.stats().rejected_arep > 0,
            "h{i} saw and rejected a forged AREP"
        );
        assert_eq!(n.stats().collisions_detected, 0);
    }
}

/// First-come-first-serve name registration (Section 3.1): the second
/// claimant of a name receives a DNS-signed DREP and falls back.
#[test]
fn name_conflict_resolved_first_come_first_serve() {
    let mut net = ScenarioBuilder::new()
        .hosts(3)
        .seed(12)
        .secure()
        // Host 2 wants host 0's (earlier) name.
        .name_override(2, "h0.manet")
        .build();
    assert!(net.bootstrap());
    let loser = net.host(2);
    assert_eq!(
        loser.stats().name_conflicts,
        1,
        "DREP received and verified"
    );
    assert!(loser.is_ready());
    let dns = net.dns_node().dns_state().expect("dns");
    assert_eq!(
        dns.lookup(&host_name(0)),
        Some(net.host_ip(0)),
        "first claimant owns the name"
    );
    // The loser registered under a decorated fallback name.
    let fallback = DomainName::new("h0.manet-2").unwrap();
    assert_eq!(dns.lookup(&fallback), Some(net.host_ip(2)));
}

/// A wider, randomly placed network bootstraps completely with unique
/// addresses (E1's success criterion).
#[test]
fn uniform_network_bootstraps_with_unique_addresses() {
    let mut net = ScenarioBuilder::new()
        .hosts(12)
        .placement(Placement::Uniform)
        .field(manet_sim::Field::new(600.0, 600.0))
        .seed(13)
        .secure()
        .build();
    assert!(net.bootstrap(), "all 12 hosts ready");
    let mut ips: Vec<_> = (0..12).map(|i| net.host_ip(i)).collect();
    ips.sort();
    ips.dedup();
    assert_eq!(ips.len(), 12, "all addresses unique");
    // Every confirmed address is a well-formed MANET CGA.
    for i in 0..12 {
        let n = net.host(i);
        assert!(n.ip().is_site_local());
        assert_eq!(n.ip().zero_field(), 0);
    }
}

/// Bootstrap messages: a joining host floods `dad_probes` AREQs per DAD
/// attempt (probe retransmission), and a clean join needs exactly one
/// attempt.
#[test]
fn clean_join_costs_one_attempt() {
    let scenario = ScenarioBuilder::new().hosts(4).seed(14).secure();
    let probes = scenario.proto().dad_probes as u64;
    let mut net = scenario.build();
    assert!(net.bootstrap());
    for i in 0..4 {
        assert_eq!(net.host(i).stats().areq_sent, probes);
        assert_eq!(net.host(i).stats().dad_attempts, 1);
    }
    // The engine-wide AREQ originations match.
    assert_eq!(net.engine.metrics().counter("dad.attempts"), 4);
    assert_eq!(net.engine.metrics().counter("dad.collisions"), 0);
}
