//! Trace-level reproduction of the paper's protocol figures.
//!
//! Figure 2: the secure DAD exchange — S floods an AREQ, the duplicate
//! holder R answers with a challenge-bound AREP, and the DNS cancels the
//! pending registration.
//!
//! Figure 3: secure route discovery — RREQ flood with per-hop SRR
//! signing, signed RREP from D, and a CREP served from a cache for a
//! second requester.
//!
//! Run with `--nocapture` to see the rendered traces; the `tables`
//! binary prints the same exhibits (F2, F3).

use manet_crypto::KeyPair;
use manet_secure::scenario::ScenarioBuilder;
use manet_secure::{HostIdentity, ProtocolConfig, SecureNode};
use manet_sim::{Dir, Engine, EngineConfig, Mobility, Pos, RadioConfig, SimDuration, SimTime};
use manet_wire::DomainName;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Figure 2's scenario, with tracing on.
fn figure2_engine() -> (Engine, manet_sim::NodeId, manet_sim::NodeId) {
    let cfg = ProtocolConfig::default();
    let mut engine = Engine::new(EngineConfig {
        seed: 60,
        trace: true,
        radio: RadioConfig {
            loss: 0.0,
            ..RadioConfig::default()
        },
        ..EngineConfig::default()
    });
    let dns = SecureNode::new_dns(cfg.clone(), Vec::new(), engine.rng());
    let dns_pk = dns.public_key().clone();

    // R owns an address; S later claims the same one (shared key pair +
    // modifier construct the collision deterministically).
    let kp_r = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(4242));
    let kp_s = KeyPair::generate(512, &mut ChaCha12Rng::seed_from_u64(4242));
    let mut ident_r = HostIdentity::from_keypair(kp_r, engine.rng());
    let mut ident_s = HostIdentity::from_keypair(kp_s, engine.rng());
    ident_r.set_rn(0xF1C2);
    ident_s.set_rn(0xF1C2);

    let r = SecureNode::with_identity(
        cfg.clone(),
        ident_r,
        dns_pk.clone(),
        Some(DomainName::new("r.manet").unwrap()),
        Default::default(),
    );
    let s = SecureNode::with_identity(
        cfg,
        ident_s,
        dns_pk,
        Some(DomainName::new("s.manet").unwrap()),
        Default::default(),
    );

    engine.add_node(Box::new(dns), Pos::new(0.0, 0.0), Mobility::Static);
    let r_id = engine.add_node(Box::new(r), Pos::new(180.0, 0.0), Mobility::Static);
    let s_id = engine.add_node_at(
        Box::new(s),
        Pos::new(360.0, 0.0),
        Mobility::Static,
        SimTime(2_000_000),
    );
    (engine, r_id, s_id)
}

/// Figure 2: the duplicate-address exchange happens in the figure's
/// order — AREQ flood, AREP from the owner, registration cancelled at
/// the DNS, new rn chosen, second AREQ confirms.
#[test]
fn figure2_secure_dad_trace() {
    let (mut engine, r_id, s_id) = figure2_engine();
    engine.run_until(SimTime(10_000_000));

    let s = engine.protocol_as::<SecureNode>(s_id);
    let r = engine.protocol_as::<SecureNode>(r_id);
    assert!(s.is_ready());
    assert_eq!(s.stats().collisions_detected, 1);
    assert_eq!(s.stats().dad_attempts, 2);
    assert_eq!(r.stats().arep_sent, 1);

    let tracer = engine.tracer();
    println!("--- Figure 2 trace ---\n{}", tracer.render());

    // Event ordering: S's AREQ precedes R's AREP, which precedes S's
    // second AREQ.
    let areq_times: Vec<_> = tracer
        .of_kind("AREQ")
        .filter(|e| e.dir == Dir::Tx && e.node == s_id)
        .map(|e| e.time)
        .collect();
    assert!(areq_times.len() >= 2, "two DAD rounds traced");
    let arep_time = tracer
        .of_kind("AREP")
        .find(|e| e.dir == Dir::Tx && e.node == r_id)
        .expect("owner's AREP traced")
        .time;
    assert!(areq_times[0] < arep_time);
    assert!(arep_time < areq_times[1]);

    // The DAD notes record the collision and the final confirmation.
    let notes: Vec<_> = tracer
        .of_kind("DAD")
        .filter(|e| e.node == s_id)
        .map(|e| e.detail.clone())
        .collect();
    assert!(notes.iter().any(|d| d.contains("collision")));
    assert!(notes.iter().any(|d| d.contains("confirmed")));
}

/// Figure 2's DNS half: the pending registration for the colliding
/// address is cancelled by the (verified) warning AREP, and the second
/// attempt's name is committed.
#[test]
fn figure2_dns_side() {
    let (mut engine, _r_id, s_id) = figure2_engine();
    engine.run_until(SimTime(10_000_000));
    let m = engine.metrics();
    assert!(
        m.counter("dns.reg_cancelled") >= 1,
        "warning AREP cancelled the pending entry"
    );
    // The reroll succeeded and its name got committed.
    let s_ip = engine.protocol_as::<SecureNode>(s_id).ip();
    let dns = engine
        .protocol_as::<SecureNode>(manet_sim::NodeId(0))
        .dns_state()
        .expect("dns");
    assert_eq!(dns.lookup(&DomainName::new("s.manet").unwrap()), Some(s_ip));
}

/// Figure 3: RREQ/RREP and the cached CREP, in the figure's order, with
/// every verification passing.
#[test]
fn figure3_route_discovery_trace() {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(61)
        .trace(true)
        .secure()
        .build();
    assert!(net.bootstrap());

    // S = h0 discovers D = h4 (Figure 3's left half).
    net.run_flows(&[(0, 4)], 1, SimDuration::from_millis(400));
    // S' = h1 asks for the same destination; S answers from cache
    // (Figure 3's right half).
    let report = net.run_flows(&[(1, 4)], 1, SimDuration::from_millis(400));

    let tracer = net.engine.tracer();
    println!("--- Figure 3 trace ---\n{}", tracer.render());

    let h0 = net.hosts[0];
    let h4 = net.hosts[4];
    let rreq_t = tracer
        .of_kind("RREQ")
        .find(|e| e.dir == Dir::Tx && e.node == h0)
        .expect("S floods RREQ")
        .time;
    let rrep_t = tracer
        .of_kind("RREP")
        .find(|e| e.dir == Dir::Tx && e.node == h4)
        .expect("D answers RREP")
        .time;
    assert!(rreq_t < rrep_t);
    let crep_t = tracer
        .of_kind("CREP")
        .find(|e| e.dir == Dir::Tx)
        .expect("cached reply served")
        .time;
    assert!(rrep_t < crep_t, "CREP belongs to the second discovery");

    // All signatures verified along the way.
    let m = net.engine.metrics();
    assert_eq!(m.counter("sec.rreq_rejected"), 0);
    assert_eq!(m.counter("sec.rrep_rejected"), 0);
    assert_eq!(m.counter("sec.crep_rejected"), 0);
    assert!(report.delivery_ratio.expect("packets sent") > 0.9);
}

/// Figure 1 is validated structurally in `manet-wire` unit tests; this
/// cross-checks it end to end: every confirmed address in a bootstrapped
/// network has the Figure 1 layout and is owned by its node's key.
#[test]
fn figure1_addresses_in_live_network() {
    let mut net = ScenarioBuilder::new().hosts(4).seed(62).secure().build();
    assert!(net.bootstrap());
    for i in 0..4 {
        let n = net.host(i);
        let ip = n.ip();
        assert!(ip.is_site_local(), "10-bit fec0::/10 prefix");
        assert_eq!(ip.zero_field(), 0, "38-bit zero field");
        assert_eq!(ip.subnet_id(), 0, "16-bit MANET subnet ID");
        // 64-bit H(PK, rn): re-derivable only with the node's key
        // material — checked here via the public verify path.
        let proof = manet_wire::cga::verify(
            &ip,
            n.public_key(),
            // rn is private to the node; reconstruct via the identity's
            // public verify in unit tests. Here we just re-check shape:
            // interface id is 64 bits of hash output (nonzero whp).
            0,
        );
        let _ = proof; // rn=0 is almost surely wrong — that's the point:
        assert!(proof.is_err(), "foreign rn must not verify");
    }
}
