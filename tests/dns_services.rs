//! Integration tests for the secure DNS services (Section 3.2):
//! authenticated resolution, pre-registered servers, the challenge/
//! response IP-change flow, and their attack surfaces.

use manet_secure::scenario::{host_name, Network, ScenarioBuilder};
use manet_secure::{attacks, SecureNode};
use manet_sim::SimDuration;
use manet_wire::{sigdata, Challenge, DomainName, IpChangeProof, Message, RouteRecord};

fn chain(n: usize, seed: u64) -> Network<SecureNode> {
    ScenarioBuilder::new().hosts(n).seed(seed).secure().build()
}

/// A host resolves another host's auto-registered name through the DNS
/// and gets a signed, challenge-bound answer.
#[test]
fn resolve_registered_name() {
    let mut net = chain(4, 50);
    assert!(net.bootstrap());
    let target = host_name(0);
    let resolver = net.hosts[3];
    net.engine
        .with_protocol::<SecureNode, _>(resolver, |n, ctx| {
            n.resolve(ctx, host_name(0));
        });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);
    let n3 = net.host(3);
    assert_eq!(
        n3.stats().resolved.get(&target),
        Some(&Some(net.host_ip(0))),
        "signed answer matches the registered address"
    );
    assert_eq!(n3.stats().rejected_dns_reply, 0);
}

/// Unknown names produce an authenticated NXDOMAIN (`None` answer) — the
/// signature covers the absence too, so it cannot be forged either.
#[test]
fn nxdomain_is_signed() {
    let mut net = chain(3, 51);
    assert!(net.bootstrap());
    let ghost = DomainName::new("nobody.manet").unwrap();
    let resolver = net.hosts[2];
    let q = ghost.clone();
    net.engine
        .with_protocol::<SecureNode, _>(resolver, |n, ctx| {
            n.resolve(ctx, q);
        });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);
    assert_eq!(net.host(2).stats().resolved.get(&ghost), Some(&None));
}

/// Pre-registered permanent entries (the paper's public-server scenario)
/// survive an online claim on the same name: the claimant gets a DREP.
#[test]
fn preregistered_server_name_is_immovable() {
    let mut net = ScenarioBuilder::new()
        .hosts(3)
        .seed(52)
        .secure()
        .pre_register(vec![0])
        // Host 2 tries to register host 0's (pre-registered) name online.
        .name_override(2, "h0.manet")
        .build();
    assert!(net.bootstrap());
    let dns = net.dns_node().dns_state().expect("dns");
    assert_eq!(dns.lookup(&host_name(0)), Some(net.host_ip(0)));
    assert_eq!(net.host(2).stats().name_conflicts, 1, "claimant got a DREP");
    assert!(dns.conflicts_rejected >= 1);
}

/// The full Section 3.2 IP-change flow: request → challenge → proof →
/// signed result; the mapping moves and the host switches addresses.
#[test]
fn ip_change_happy_path() {
    let mut net = chain(3, 53);
    assert!(net.bootstrap());
    let old_ip = net.host_ip(1);
    let mover = net.hosts[1];
    net.engine.with_protocol::<SecureNode, _>(mover, |n, ctx| {
        n.request_ip_change(ctx, 0xFEED_F00D);
    });
    let until = net.engine.now() + SimDuration::from_secs(8);
    net.engine.run_until(until);

    let n1 = net.host(1);
    assert_eq!(n1.stats().ip_change_accepted, Some(true));
    let new_ip = n1.ip();
    assert_ne!(new_ip, old_ip, "host switched to the new CGA");
    let dns = net.dns_node().dns_state().expect("dns");
    assert_eq!(dns.lookup(&host_name(1)), Some(new_ip), "mapping moved");
    assert_eq!(dns.ip_changes_accepted, 1);
}

/// An attacker cannot move someone else's name: its IP-change proof is
/// signed by a key that does not hash to the victim's address, so the
/// DNS rejects it and the mapping stays.
#[test]
fn ip_change_with_wrong_key_rejected() {
    let mut net = chain(4, 54);
    assert!(net.bootstrap());
    let victim_name = host_name(0);
    let victim_ip = net.host_ip(0);
    let attacker = net.hosts[2];
    let attacker_ip = net.host_ip(2);

    // The attacker needs a route to the DNS: resolving anything builds it.
    net.engine
        .with_protocol::<SecureNode, _>(attacker, |n, ctx| {
            n.resolve(ctx, host_name(0));
        });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);

    // Forged request: move the victim's name to an attacker address.
    let dns_anycast = manet_wire::DNS_WELL_KNOWN[0];
    let vn = victim_name.clone();
    net.engine
        .with_protocol::<SecureNode, _>(attacker, |n, ctx| {
            let path = RouteRecord(vec![attacker_ip, dns_anycast]);
            // Direct path works because the DNS answer above made them
            // neighbors-by-cache; if not, inject_routed returns false and
            // the test would fail below anyway.
            let msg = Message::IpChangeRequest(manet_wire::IpChangeRequest {
                dn: vn,
                old_ip: victim_ip,
                new_ip: attacker_ip,
                route: RouteRecord::new(),
            });
            n.inject_routed(ctx, path, msg);
        });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);

    let dns = net.dns_node().dns_state().expect("dns");
    assert_eq!(
        dns.lookup(&victim_name),
        Some(victim_ip),
        "the victim's mapping must not move"
    );
    assert_eq!(dns.ip_changes_accepted, 0);
}

/// A forged IP-change *proof* (valid session, wrong key) is rejected by
/// the CGA ownership checks at the DNS.
#[test]
fn forged_ip_change_proof_rejected() {
    let mut net = chain(3, 55);
    assert!(net.bootstrap());
    let victim_ip = net.host_ip(0);
    let attacker = net.hosts[1];
    let attacker_ip = net.host_ip(1);
    let dns_anycast = manet_wire::DNS_WELL_KNOWN[0];

    // Build a route to the DNS first.
    net.engine
        .with_protocol::<SecureNode, _>(attacker, |n, ctx| {
            n.resolve(ctx, host_name(0));
        });
    let until = net.engine.now() + SimDuration::from_secs(6);
    net.engine.run_until(until);

    // Step 1: a *plausible* request for the attacker's own name — the
    // session opens. Step 3 then lies about the addresses.
    let own_name = host_name(1);
    let dn = own_name.clone();
    net.engine
        .with_protocol::<SecureNode, _>(attacker, |n, ctx| {
            let pk = n.public_key().clone();
            let sig_payload = sigdata::ip_change(&victim_ip, &attacker_ip, Challenge(0));
            let msg = Message::IpChangeProof(IpChangeProof {
                dn,
                old_ip: victim_ip, // not ours, and ch=0 guess is wrong anyway
                new_ip: attacker_ip,
                old_rn: 0,
                new_rn: 0,
                pk: pk.clone(),
                sig: manet_crypto::Signature::from_bytes(&sig_payload), // garbage
                route: RouteRecord::new(),
            });
            let path = RouteRecord(vec![attacker_ip, dns_anycast]);
            n.inject_routed(ctx, path, msg);
        });
    let until = net.engine.now() + SimDuration::from_secs(4);
    net.engine.run_until(until);

    let dns = net.dns_node().dns_state().expect("dns");
    assert_eq!(dns.ip_changes_accepted, 0);
    assert_eq!(dns.lookup(&host_name(0)), Some(victim_ip));
}

/// DNS impersonation by a malicious relay: the forged reply fails the
/// known-key signature check. (The query it swallowed is denied — the
/// paper's DNS only authenticates; availability under an on-path DoS is
/// out of scope.)
#[test]
fn forged_dns_reply_rejected() {
    let mut net = ScenarioBuilder::new()
        .hosts(4)
        .seed(56)
        .adversary(1, attacks::dns_impersonator())
        .secure()
        // The forged reply is detected by its *signature* failing under
        // the real DNS key — meaningless under the Null backend.
        .crypto_backend(manet_crypto::BackendKind::Rsa)
        .build();
    assert!(net.bootstrap());
    // h3 is far from the DNS; the route passes the attacker at h1.
    let resolver = net.hosts[3];
    net.engine
        .with_protocol::<SecureNode, _>(resolver, |n, ctx| {
            n.resolve(ctx, host_name(0));
        });
    let until = net.engine.now() + SimDuration::from_secs(8);
    net.engine.run_until(until);

    let n3 = net.host(3);
    let atk = net.host(1);
    if atk.stats().atk_forged_dns > 0 {
        assert!(
            n3.stats().rejected_dns_reply > 0,
            "forged DNS reply must be rejected"
        );
        // Whatever was resolved (if the genuine answer got through on a
        // different path) is the truth, never the attacker's address.
        if let Some(ans) = n3.stats().resolved.get(&host_name(0)) {
            assert_eq!(*ans, Some(net.host_ip(0)));
        }
    } else {
        // The route dodged the attacker: the resolution simply succeeds.
        assert_eq!(
            n3.stats().resolved.get(&host_name(0)),
            Some(&Some(net.host_ip(0)))
        );
    }
}

/// Resolution still verifies when the DNS answer crosses several hops —
/// the signature is end-to-end, relays cannot tamper.
#[test]
fn multi_hop_resolution_is_end_to_end_authentic() {
    let mut net = chain(6, 57);
    assert!(net.bootstrap());
    let resolver = net.hosts[5]; // five hops from the DNS
    net.engine
        .with_protocol::<SecureNode, _>(resolver, |n, ctx| {
            n.resolve(ctx, host_name(1));
        });
    let until = net.engine.now() + SimDuration::from_secs(8);
    net.engine.run_until(until);
    assert_eq!(
        net.host(5).stats().resolved.get(&host_name(1)),
        Some(&Some(net.host_ip(1)))
    );
    assert!(net.dns_node().dns_state().unwrap().queries_answered >= 1);
}
