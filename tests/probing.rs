//! Integration tests for the route-probing extension (Section 3.4's
//! "the source host can traverse the route and test the integrality of
//! each host"): naive droppers are localized exactly; probe-evading
//! droppers degrade the defense to the credit mechanism; honest relays
//! are never slashed by a probe verdict.

use manet_secure::scenario::{Placement, ScenarioBuilder, SecureBuilder, BYPASS_ATTACKER};
use manet_secure::{attacks, Behavior};
use manet_sim::SimDuration;

fn probing_scenario(attacker: Behavior, seed: u64) -> SecureBuilder {
    ScenarioBuilder::new()
        .hosts(5)
        .placement(Placement::Bypass)
        .adversary(BYPASS_ATTACKER, attacker)
        .seed(seed)
        .secure()
        .tune(|p| p.probe_enabled = true)
}

/// A naive data dropper swallows probes too and is localized exactly:
/// the suspect list contains the attacker and nobody else.
#[test]
fn naive_dropper_localized_exactly() {
    let mut net = probing_scenario(attacks::data_dropper(), 70).build();
    assert!(net.bootstrap());
    net.run_flows(&[(0, 2)], 20, SimDuration::from_millis(300));

    let atk_ip = net.host_ip(BYPASS_ATTACKER);
    let h0 = net.host(0);
    assert!(
        h0.stats().probes_sent >= 1,
        "persistent loss triggered a probe"
    );
    assert!(
        !h0.stats().probe_suspects.is_empty(),
        "the probe reached a verdict"
    );
    for suspect in &h0.stats().probe_suspects {
        assert_eq!(*suspect, atk_ip, "only the dropper is ever accused");
    }
    // Localization slashes hard: the attacker is below the avoidance
    // floor at the source.
    assert!(h0.credits().hostile_hosts().contains(&atk_ip));
    // Honest detour relays were never slashed below the floor.
    for i in [3usize, 4] {
        let ip = net.host_ip(i);
        assert!(
            h0.credits().credit(&ip) > -50,
            "honest relay h{i} must not be probe-slashed"
        );
    }
    assert!(
        net.delivery_ratio().expect("packets sent") > 0.7,
        "traffic shifted to the detour"
    );
}

/// An evading dropper (forwards + acks probes, drops data) defeats
/// localization — every probe is inconclusive — but the credit fallback
/// still reroutes.
#[test]
fn evading_dropper_is_inconclusive_but_credits_still_work() {
    let mut evader = attacks::data_dropper();
    evader.evade_probes = true;
    let mut net = probing_scenario(evader, 71).build();
    assert!(net.bootstrap());
    net.run_flows(&[(0, 2)], 25, SimDuration::from_millis(300));

    let h0 = net.host(0);
    assert!(h0.stats().probes_sent >= 1);
    assert!(
        h0.stats().probes_inconclusive >= 1,
        "the evader answered every probe"
    );
    assert!(
        h0.stats().probe_suspects.is_empty(),
        "no one was (wrongly) localized"
    );
    // The attacker acknowledged probes as a relay.
    assert!(net.host(BYPASS_ATTACKER).stats().probe_acks_sent >= 1);
    // Credits still shift traffic off the dead path.
    assert!(net.delivery_ratio().expect("packets sent") > 0.7);
}

/// A healthy network never probes: the trigger requires consecutive
/// ack timeouts.
#[test]
fn healthy_route_never_probed() {
    let mut net = probing_scenario(Behavior::default(), 72).build();
    assert!(net.bootstrap());
    net.run_flows(&[(0, 2)], 15, SimDuration::from_millis(300));
    assert_eq!(net.host(0).stats().probes_sent, 0);
    assert_eq!(net.engine.metrics().counter("probe.sent"), 0);
    assert!(net.delivery_ratio().expect("packets sent") > 0.95);
}

/// Probe acks carry full identity proofs: a forged ack (vouching for a
/// hop with the wrong key) is rejected, so a dropper cannot fake its own
/// liveness through a neighbor.
#[test]
fn forged_probe_ack_rejected() {
    use manet_secure::SecureNode;
    use manet_wire::{sigdata, Message, ProbeAck, RouteRecord, Seq};

    let mut net = probing_scenario(attacks::data_dropper(), 73).build();
    assert!(net.bootstrap());
    // Drive until a probe is in flight, then have a *different* node
    // inject an ack claiming the attacker's hop identity.
    net.run_flows(&[(0, 2)], 6, SimDuration::from_millis(300));
    let atk_ip = net.host_ip(BYPASS_ATTACKER);
    let src_ip = net.host_ip(0);
    let injector = net.hosts[3];
    let injector_ip = net.host_ip(3);
    net.engine
        .with_protocol::<SecureNode, _>(injector, |n, ctx| {
            // Sign with our own key but claim the attacker's hop address: the
            // CGA check at the source must reject it (sequence 9999 stands in
            // for whatever probe is outstanding — even a correct sequence
            // would fail the identity check, which is the point).
            let payload = sigdata::probe_ack(&src_ip, Seq(9999), &atk_ip);
            let proof = manet_wire::IdentityProof {
                pk: n.public_key().clone(),
                rn: 0,
                sig: manet_crypto::Signature::from_bytes(&payload),
            };
            let msg = Message::ProbeAck(ProbeAck {
                sip: src_ip,
                probe_seq: Seq(9999),
                hop: atk_ip,
                proof,
            });
            n.inject_routed(ctx, RouteRecord(vec![injector_ip, src_ip]), msg);
        });
    let until = net.engine.now() + SimDuration::from_secs(2);
    net.engine.run_until(until);
    // The injected ack matched no pending probe (or failed verification);
    // either way the attacker's record is not whitewashed.
    net.run_flows(&[(0, 2)], 10, SimDuration::from_millis(300));
    let h0 = net.host(0);
    assert!(h0.credits().credit(&atk_ip) < 0, "attacker still negative");
}

/// Probing accelerates isolation relative to timeout penalties alone:
/// with probes the attacker crosses the avoidance floor after fewer
/// packets.
#[test]
fn probing_accelerates_isolation() {
    let run = |probe: bool| {
        let mut net = probing_scenario(attacks::data_dropper(), 74)
            .tune(|p| p.probe_enabled = probe)
            .build();
        assert!(net.bootstrap());
        // A short burst — not enough for timeout penalties alone (2 per
        // timeout, floor at -10) to isolate, but enough for one probe.
        net.run_flows(&[(0, 2)], 6, SimDuration::from_millis(300));
        let atk_ip = net.host_ip(BYPASS_ATTACKER);
        net.host(0).credits().credit(&atk_ip)
    };
    let with_probe = run(true);
    let without_probe = run(false);
    assert!(
        with_probe < without_probe,
        "probe slash must outpace timeout penalties: {with_probe} vs {without_probe}"
    );
    assert!(with_probe <= -100, "slashed by the probe verdict");
}
