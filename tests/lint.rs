//! Tier-1 enforcement of the static analyzer: plain `cargo test` runs
//! the same engine CI runs via `cargo run -p manet-lint -- --deny`, so
//! a determinism-rule violation (std hasher in protocol code, hash-order
//! iteration, wall clock in the engine, undocumented unsafe, …) fails
//! the build even for contributors who never look at the CI config.

use std::hash::Hasher;
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = manet_lint::run(root).expect("lint baseline and sources load");
    assert!(
        findings.is_empty(),
        "manet-lint found {} problem(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// `manet-crypto` sits below `manet-sim` and carries a mirror of the
/// canonical Fx hasher. The two copies must stay byte-identical in
/// behavior; neither crate can see the other, so the equality is pinned
/// here at the workspace level.
#[test]
fn crypto_fxhash_mirror_matches_canonical() {
    let inputs: [&[u8]; 4] = [
        b"",
        b"fec0::13",
        b"hello world!!",
        b"0123456789abcdef0123456789abcdef~",
    ];
    for input in inputs {
        let mut canonical = manet_sim::fxhash::FxHasher::default();
        let mut mirror = manet_crypto::fxhash::FxHasher::default();
        canonical.write(input);
        mirror.write(input);
        assert_eq!(
            canonical.finish(),
            mirror.finish(),
            "fxhash copies diverge on {input:?}"
        );
    }
    let mut canonical = manet_sim::fxhash::FxHasher::default();
    let mut mirror = manet_crypto::fxhash::FxHasher::default();
    canonical.write_u64(0xfec0_0000_0000_000d);
    mirror.write_u64(0xfec0_0000_0000_000d);
    assert_eq!(canonical.finish(), mirror.finish());
}
