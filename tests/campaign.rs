//! Integration gates for the declarative campaign layer: a JSON
//! scenario is the *same universe* as the builder chain it describes
//! (round-trip ⇒ identical fingerprint), malformed documents fail with
//! line/key context, and every committed campaign under `campaigns/`
//! parses, expands, and — for the cheap ones — runs to byte-identical
//! canonical reports.

use manet_secure::campaign::{load_plan, run_campaign, ScenarioSpec, SweepMode};
use manet_secure::scenario::{scale_family, ScenarioBuilder, Workload};
use manet_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::path::Path;

// ---------------------------------------------------------------------
// Round trips: builder → JSON → parse → run ⇒ the builder's report
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A plain builder captured into a spec, rendered to canonical
    /// JSON, parsed back, and run produces the exact fingerprint the
    /// builder produces directly — and the re-parse is textually a
    /// fixed point (canonical render of the re-parsed spec matches).
    #[test]
    fn plain_round_trip_preserves_the_fingerprint(
        hosts in 3usize..8,
        seed in 0u64..1000,
        packets in 1usize..4,
        interval_ms in 200u64..500,
    ) {
        let b = ScenarioBuilder::new().hosts(hosts).seed(seed).plain();
        let w = Workload::flows(
            vec![(0, hosts - 1)],
            packets,
            SimDuration::from_millis(interval_ms),
        );

        let direct = b.clone().build().run(&w);

        let spec = ScenarioSpec::from_plain_builder(&b).with_workload(&w, 0.0, false);
        let text = spec.to_canonical_string();
        let reparsed = ScenarioSpec::parse(&text).expect("canonical render must re-parse");
        // Canonical render is a parse fixed point.
        prop_assert_eq!(reparsed.to_canonical_string(), text);
        let via_json = reparsed.run().expect("spec run");
        prop_assert_eq!(via_json.fingerprint(), direct.fingerprint());
    }
}

/// The secure stack round-trips too: captured spec → JSON → parse →
/// run matches bootstrap-then-run on the builder itself.
#[test]
fn secure_round_trip_preserves_the_fingerprint() {
    let b = ScenarioBuilder::new().hosts(4).seed(4242).secure();
    let w = Workload::flows(vec![(0, 3)], 3, SimDuration::from_millis(300));

    let mut direct_net = b.clone().build();
    direct_net.bootstrap();
    let direct = direct_net.run(&w);

    let spec = ScenarioSpec::from_secure_builder(&b).with_workload(&w, 0.0, true);
    let reparsed =
        ScenarioSpec::parse(&spec.to_canonical_string()).expect("canonical render must re-parse");
    let via_json = reparsed.run().expect("spec run");
    assert_eq!(via_json.fingerprint(), direct.fingerprint());
    assert!(via_json.crypto.executed + via_json.crypto.cached > 0);
}

/// The S1 exhibit shape, declared purely as JSON at reduced scale,
/// reproduces the programmatic `scale_family` run bit for bit —
/// formation beat, engine-RNG flow picking, churn and all.
#[test]
fn s1_shape_from_config_matches_the_programmatic_run() {
    let doc = r#"{
      "scenario": {
        "hosts": 150,
        "seed": 5,
        "placement": {"kind": "uniform"},
        "field": {"density": 15.0},
        "mobility": {
          "kind": "random_waypoint",
          "min_speed": 1.0,
          "max_speed": 4.0,
          "pause_s": 2.0
        },
        "churn": {"kills": 3, "window_s": [4.0, 10.0]}
      },
      "workload": {
        "flows": {"scale": 5},
        "packets": 3,
        "interval_ms": 400.0,
        "formation_s": 1.0
      }
    }"#;
    let from_config = ScenarioSpec::parse(doc).unwrap().run().unwrap();

    let mut net = scale_family(150, 5)
        .churn(3, (SimTime(4_000_000), SimTime(10_000_000)))
        .plain()
        .build();
    net.engine.run_until(SimTime(1_000_000));
    let flows = net.scale_flows(5);
    let programmatic = net.run(&Workload::flows(flows, 3, SimDuration::from_millis(400)));

    assert_eq!(from_config.fingerprint(), programmatic.fingerprint());
    assert!(from_config.events > 1000, "run was non-trivial");
}

// ---------------------------------------------------------------------
// Malformed documents: precise errors with line/key context
// ---------------------------------------------------------------------

#[test]
fn unknown_keys_are_rejected_with_line_and_suggestions() {
    let doc = "{\n  \"scenario\": {\n    \"hots\": 5\n  }\n}";
    let err = ScenarioSpec::parse(doc).unwrap_err();
    assert_eq!(err.path, "scenario");
    assert_eq!(err.line, 3, "error must point at the offending key");
    assert!(
        err.msg
            .starts_with("unknown key \"hots\"; expected one of: "),
        "got: {}",
        err.msg
    );
    assert!(
        err.msg.contains("hosts"),
        "expected-keys list names the fix"
    );
}

#[test]
fn out_of_range_values_are_diagnosed_at_their_path() {
    let doc = "{\n  \"scenario\": {\n    \"radio\": {\"loss\": 1.5}\n  }\n}";
    let err = ScenarioSpec::parse(doc).unwrap_err();
    assert_eq!(
        err.to_string(),
        "scenario.radio.loss (line 3): loss probability must be in [0, 1), got 1.5"
    );
}

#[test]
fn syntax_errors_carry_the_source_line() {
    let err = ScenarioSpec::parse("{\n  \"scenario\": {,}\n}").unwrap_err();
    assert_eq!(err.path, "$");
    assert_eq!(err.line, 2);
    assert!(err.msg.starts_with("JSON syntax: "), "got: {}", err.msg);
}

#[test]
fn duplicate_keys_are_a_parse_error_not_a_silent_override() {
    let err = ScenarioSpec::parse("{\"scenario\": {\"hosts\": 3, \"hosts\": 4}}").unwrap_err();
    assert!(err.msg.contains("duplicate key"), "got: {}", err.msg);
}

#[test]
fn bad_enum_values_list_the_alternatives() {
    let doc = r#"{"scenario": {"placement": {"kind": "ring"}}}"#;
    let err = ScenarioSpec::parse(doc).unwrap_err();
    assert_eq!(err.path, "scenario.placement.kind");
    assert_eq!(
        err.msg,
        "unknown placement \"ring\"; expected one of: bypass, chain, custom, grid, uniform"
    );
}

// ---------------------------------------------------------------------
// Committed campaigns: every file parses, expands, and the cheap ones
// run to byte-identical canonical reports
// ---------------------------------------------------------------------

#[test]
fn every_committed_campaign_parses_and_expands() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("campaigns");
    let mut names = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("campaigns/ directory") {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "json") != Some(true) {
            continue;
        }
        // s1_base.json is a defaults fragment pulled in via base_file,
        // not a standalone plan.
        if path.file_name().map(|n| n == "s1_base.json") == Some(true) {
            continue;
        }
        let plan =
            load_plan(&path).unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
        assert!(
            !plan.cells().is_empty(),
            "{} expands to no cells",
            path.display()
        );
        for cell in plan.cells() {
            let doc = plan.document_for(&cell).expect("cell document");
            ScenarioSpec::from_json(&doc)
                .unwrap_or_else(|e| panic!("{} cell invalid: {e}", path.display()));
        }
        names.push(path.file_stem().unwrap().to_string_lossy().into_owned());
    }
    names.sort();
    assert_eq!(names, ["s1_density", "secure_attack", "smoke"]);
}

#[test]
fn smoke_campaign_is_byte_identical_across_runs() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("campaigns/smoke.json");
    let plan = load_plan(&path).unwrap();
    assert!(matches!(plan.mode, SweepMode::Grid));
    assert_eq!(plan.cells().len(), 2, "grid over 2 densities");
    assert_eq!(plan.seeds, vec![1, 2]);

    let a = run_campaign(&plan).unwrap();
    let b = run_campaign(&plan).unwrap();
    assert_eq!(
        a.canonical_json(),
        b.canonical_json(),
        "canonical campaign reports must be byte-identical"
    );
    assert!(
        a.passed(),
        "committed smoke tolerances hold:\n{}",
        a.summary_table()
    );
}

#[test]
fn secure_attack_campaign_is_byte_identical_across_runs() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("campaigns/secure_attack.json");
    let plan = load_plan(&path).unwrap();
    assert!(matches!(plan.mode, SweepMode::Lhs { samples: 4, .. }));
    assert_eq!(plan.cells().len(), 4, "LHS draws `samples` cells");

    let a = run_campaign(&plan).unwrap();
    let b = run_campaign(&plan).unwrap();
    assert_eq!(a.canonical_json(), b.canonical_json());
    assert!(
        a.passed(),
        "committed attack tolerances hold:\n{}",
        a.summary_table()
    );
    // The sweep actually exercised the secure stack under attack.
    for cell in &a.cells {
        assert!(cell.mean_of("crypto.executed").unwrap_or(0.0) >= 1.0);
    }
}
