//! Property gates for the memory diet (ROADMAP item 1): the
//! arena/interned storage landed for scale must be *observationally
//! invisible*.
//!
//! Two layers:
//!
//! * [`RouteCache`] against a naive owning-`Vec` oracle implementing
//!   the same bounds and eviction rules, driven through random
//!   insert / link-failure / dest-drop interleavings tight enough to
//!   force constant span free/reuse churn in the arena. Any handle
//!   mix-up (a reused span served to a stale route) shows up as a
//!   relay-list mismatch.
//! * Whole-universe trace equality: the same seed must render the same
//!   byte-exact trace stream and report fingerprint under
//!   `ExecMode::Single` and `Sharded(1/4/8)`, for the plain stack
//!   (arena route cache + interned maps + streaming stats off/on) and
//!   the secure stack.

use manet_secure::config::CreditConfig;
use manet_secure::credit::CreditManager;
use manet_secure::routecache::{CachedRoute, RouteCache};
use manet_secure::scenario::{scale_family, Placement, ScenarioBuilder, Workload};
use manet_secure::ProtocolConfig;
use manet_sim::{ExecMode, SimDuration, SimTime};
use manet_wire::Ipv6Addr;
use proptest::prelude::*;

fn ip(last: u8) -> Ipv6Addr {
    let mut b = [0u8; 16];
    b[0] = 0xfe;
    b[1] = 0xc0;
    // Spread entropy across the interface id like real addresses do.
    b[8] = last.wrapping_mul(37);
    b[15] = last;
    Ipv6Addr(b)
}

/// One modelled route: owned relay list plus its learn time.
type ModelRoute = (Vec<Ipv6Addr>, SimTime);

/// The oracle: the pre-arena layout (every route owns its relay `Vec`)
/// running the same eviction and selection algorithm as [`RouteCache`].
#[derive(Default)]
struct VecModel {
    routes: Vec<(Ipv6Addr, Vec<ModelRoute>)>,
}

impl VecModel {
    const PER_DEST: usize = 2;
    const MAX_DESTS: usize = 4;

    fn list_mut(&mut self, dst: Ipv6Addr) -> &mut Vec<ModelRoute> {
        if let Some(i) = self.routes.iter().position(|(d, _)| *d == dst) {
            &mut self.routes[i].1
        } else {
            self.routes.push((dst, Vec::new()));
            &mut self.routes.last_mut().expect("just pushed").1
        }
    }

    fn insert(&mut self, dst: Ipv6Addr, relays: Vec<Ipv6Addr>, at: SimTime) {
        let is_new = !self.routes.iter().any(|(d, _)| *d == dst);
        if is_new && self.routes.len() >= Self::MAX_DESTS {
            // Evict the destination whose newest route is oldest, ties
            // by address — mirror of RouteCache's dest eviction.
            let stalest = self
                .routes
                .iter()
                .map(|(d, list)| {
                    let newest = list.iter().map(|(_, t)| *t).max().expect("nonempty");
                    (newest, *d)
                })
                .min()
                .map(|(_, d)| d)
                .expect("nonempty");
            self.routes.retain(|(d, _)| *d != stalest);
        }
        let list = self.list_mut(dst);
        list.retain(|(r, _)| r != &relays);
        while list.len() >= Self::PER_DEST {
            let oldest = list
                .iter()
                .enumerate()
                .min_by_key(|(i, (_, t))| (*t, *i))
                .map(|(i, _)| i)
                .expect("nonempty");
            list.remove(oldest);
        }
        list.push((relays, at));
    }

    fn remove_link(&mut self, me: Ipv6Addr, from: Ipv6Addr, to: Ipv6Addr) -> usize {
        let mut dropped = 0;
        for (dst, list) in self.routes.iter_mut() {
            list.retain(|(relays, _)| {
                let mut path = vec![me];
                path.extend_from_slice(relays);
                path.push(*dst);
                let uses = path.windows(2).any(|w| w[0] == from && w[1] == to);
                dropped += usize::from(uses);
                !uses
            });
        }
        self.routes.retain(|(_, v)| !v.is_empty());
        dropped
    }

    fn remove_dest(&mut self, dst: &Ipv6Addr) {
        self.routes.retain(|(d, _)| d != dst);
    }

    fn relay_lists(&self, dst: &Ipv6Addr) -> Vec<Vec<Ipv6Addr>> {
        self.routes
            .iter()
            .find(|(d, _)| d == dst)
            .map(|(_, list)| list.iter().map(|(r, _)| r.clone()).collect())
            .unwrap_or_default()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert { dst: u8, relays: Vec<u8>, at: u64 },
    RemoveLink { from: u8, to: u8 },
    RemoveDest { dst: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A tiny address space (8 dsts, relays from the same pool) with a
    // dest cap of 4 and per-dest cap of 2 keeps both caps constantly
    // hot, so arena spans free and get reused within a few ops. The
    // insert arm is listed twice: the local `prop_oneof!` is uniform
    // (no weight syntax), and a removal-heavy mix would leave the caps
    // cold.
    let insert = || {
        (0u8..8, proptest::collection::vec(0u8..8, 0..4), 0u64..1_000)
            .prop_map(|(dst, relays, at)| Op::Insert { dst, relays, at })
    };
    prop_oneof![
        insert(),
        insert(),
        (0u8..9, 0u8..9).prop_map(|(from, to)| Op::RemoveLink { from, to }),
        (0u8..8).prop_map(|dst| Op::RemoveDest { dst }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arena-backed cache ≡ owning-Vec oracle under eviction churn:
    /// same surviving routes, same order, same link-failure drop
    /// counts — i.e. span reuse never leaks one route's relays into
    /// another's.
    #[test]
    fn route_cache_matches_vec_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let me = ip(200);
        let credits = CreditManager::new(CreditConfig::default());
        let mut cache = RouteCache::with_caps(
            SimDuration(60_000_000),
            VecModel::PER_DEST,
            VecModel::MAX_DESTS,
        );
        let mut model = VecModel::default();
        for op in &ops {
            match op {
                Op::Insert { dst, relays, at } => {
                    let relays: Vec<Ipv6Addr> = relays.iter().map(|&r| ip(r)).collect();
                    cache.insert(ip(*dst), CachedRoute {
                        relays: relays.clone(),
                        d_proof: None,
                        learned_at: SimTime(*at),
                    });
                    model.insert(ip(*dst), relays, SimTime(*at));
                }
                Op::RemoveLink { from, to } => {
                    let dropped = cache.remove_link(me, ip(*from), ip(*to));
                    let expect = model.remove_link(me, ip(*from), ip(*to));
                    prop_assert_eq!(dropped, expect);
                }
                Op::RemoveDest { dst } => {
                    cache.remove_dest(&ip(*dst));
                    model.remove_dest(&ip(*dst));
                }
            }
            // Full-state comparison after every op: relay lists per
            // destination, in insertion order.
            for d in 0..8u8 {
                prop_assert_eq!(cache.relay_lists(&ip(d)), model.relay_lists(&ip(d)));
            }
            prop_assert_eq!(cache.len(), model.routes.len());
        }
        // The selection path reads through the same spans: spot-check
        // best() agrees with the oracle's algorithm on one dst.
        let now = SimTime(1_000);
        for d in 0..8u8 {
            let got = cache.best(&ip(d), &credits, now).map(|r| r.relays.to_vec());
            let lists = model.relay_lists(&ip(d));
            // Equal scores (no slashes): max_by keeps the LAST maximal
            // element; shorter routes order higher.
            let expect = lists
                .iter()
                .max_by(|a, b| b.len().cmp(&a.len()))
                .cloned();
            prop_assert_eq!(got, expect);
        }
    }

    /// Same-seed plain universes are byte-identical across executors
    /// and stat regimes: the interned/arena storage and the streaming
    /// aggregate path must not perturb a single trace line.
    #[test]
    fn plain_trace_identical_across_executors_and_stat_modes(seed in 1u64..64) {
        let render = |exec: ExecMode, per_node_stats: bool| {
            let mut net = scale_family(16, seed)
                .trace(true)
                .exec(exec)
                .plain()
                .tune(|c| c.per_node_stats = per_node_stats)
                .build();
            net.engine.run_until(SimTime(2_000_000));
            let flows = net.scale_flows(2);
            let report = net.run(&Workload::flows(flows, 2, SimDuration::from_millis(400)));
            (net.engine.tracer().render(), report.fingerprint())
        };
        let base = render(ExecMode::Single, true);
        for k in [1usize, 4, 8] {
            prop_assert_eq!(&render(ExecMode::Sharded(k), true), &base);
        }
        prop_assert_eq!(&render(ExecMode::Single, false), &base);
    }
}

proptest! {
    // Secure universes pay RSA keygen per case; a handful of seeds
    // with small keys still covers the interned bootstrap path under
    // every executor.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn secure_trace_identical_across_executors(seed in 1u64..16) {
        let render = |exec: ExecMode| {
            let mut net = ScenarioBuilder::new()
                .hosts(6)
                .placement(Placement::Uniform)
                .density(10.0)
                .seed(seed)
                .trace(true)
                .exec(exec)
                .secure_with(ProtocolConfig {
                    key_bits: 384,
                    ..ProtocolConfig::default()
                })
                .join_stagger(SimDuration::from_millis(20))
                .build();
            let report = net.run(&Workload::bootstrap_storm());
            (net.engine.tracer().render(), report.fingerprint())
        };
        let base = render(ExecMode::Single);
        for k in [1usize, 4, 8] {
            prop_assert_eq!(&render(ExecMode::Sharded(k)), &base);
        }
    }
}
