//! Differential properties of the spatial-index channel: for arbitrary
//! node placements — including nodes exactly on cell boundaries and
//! radios with gray zones — the grid and the linear scan must agree on
//! every observable: neighbor sets, connected components, and (with the
//! same seed, hence the same RNG draw order) exactly who receives every
//! broadcast.

use manet_sim::{
    ChannelMode, Ctx, Engine, EngineConfig, Field, Mobility, NodeId, Pos, Protocol, RadioConfig,
    SimTime,
};
use proptest::prelude::*;
use std::any::Any;

/// Records received frames; does nothing else.
struct Sink {
    frames: Vec<(NodeId, Vec<u8>)>,
}

impl Sink {
    fn new() -> Self {
        Sink { frames: Vec::new() }
    }
}

impl Protocol for Sink {
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    fn on_frame(&mut self, _ctx: &mut Ctx, src: NodeId, bytes: &[u8]) {
        self.frames.push((src, bytes.to_vec()));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx, _tag: u64) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const FIELD: f64 = 1000.0;

/// One generated placement: position fractions plus "snap this node onto
/// an exact cell-boundary multiple" flags — the boundary cases where an
/// off-by-one in cell coverage would hide.
type RawNode = (f64, f64, bool, bool);

fn build(
    channel: ChannelMode,
    raw: &[RawNode],
    radio: &RadioConfig,
    seed: u64,
) -> (Engine, Vec<NodeId>) {
    let cell = radio.max_range();
    let mut e = Engine::new(EngineConfig {
        field: Field::new(FIELD, FIELD),
        radio: radio.clone(),
        seed,
        channel,
        ..EngineConfig::default()
    });
    let ids: Vec<NodeId> = raw
        .iter()
        .map(|&(fx, fy, snap_x, snap_y)| {
            let snap = |f: f64, do_snap: bool| {
                let v = f * FIELD;
                if do_snap {
                    // Exactly k cell widths — lands on a bucket boundary.
                    ((v / cell).round() * cell).min(FIELD)
                } else {
                    v
                }
            };
            e.add_node(
                Box::new(Sink::new()),
                Pos::new(snap(fx, snap_x), snap(fy, snap_y)),
                Mobility::Static,
            )
        })
        .collect();
    e.run_until(SimTime(1)); // process all Start events
    (e, ids)
}

/// Per-node received-frame log, for end-state comparison.
fn rx_log(e: &Engine, ids: &[NodeId]) -> Vec<Vec<(NodeId, Vec<u8>)>> {
    ids.iter()
        .map(|&id| e.protocol_as::<Sink>(id).frames.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Neighbor sets and connected components agree for every node, for
    /// crisp disks and gray-zone radios alike.
    #[test]
    fn grid_and_linear_agree_on_topology(
        raw in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, any::<bool>(), any::<bool>()), 2..32),
        range in 60.0f64..400.0,
        gray_frac in 1.0f64..2.0,
        with_gray in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let radio = RadioConfig {
            range,
            loss: 0.0,
            gray_zone: with_gray.then_some(range * gray_frac),
            ..RadioConfig::default()
        };
        let (grid, ids) = build(ChannelMode::Grid, &raw, &radio, seed);
        let (lin, lin_ids) = build(ChannelMode::Linear, &raw, &radio, seed);
        prop_assert_eq!(&ids, &lin_ids);
        let mut buf = Vec::new();
        for &id in &ids {
            grid.neighbors_into(id, &mut buf);
            prop_assert_eq!(&buf, &lin.neighbors(id));
            prop_assert_eq!(
                grid.connected_component(id),
                lin.connected_component(id)
            );
        }
        prop_assert_eq!(grid.is_connected(), lin.is_connected());
    }

    /// Same seed ⇒ every broadcast (lossy, gray-zone, jittered) lands on
    /// exactly the same receivers at exactly the same times in both
    /// channel modes — the RNG-stream equivalence the NodeId-order
    /// invariant exists for.
    #[test]
    fn same_seed_broadcasts_are_bit_identical(
        raw in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, any::<bool>(), any::<bool>()), 2..24),
        range in 60.0f64..400.0,
        gray_frac in 1.0f64..2.0,
        with_gray in any::<bool>(),
        loss in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let radio = RadioConfig {
            range,
            loss,
            gray_zone: with_gray.then_some(range * gray_frac),
            ..RadioConfig::default()
        };
        let (mut grid, ids) = build(ChannelMode::Grid, &raw, &radio, seed);
        let (mut lin, _) = build(ChannelMode::Linear, &raw, &radio, seed);
        // Every node broadcasts once; engines stay RNG-synchronized
        // only if each broadcast consumed draws identically.
        for (round, &id) in ids.iter().enumerate() {
            let payload = vec![round as u8; 16];
            grid.with_protocol::<Sink, _>(id, {
                let p = payload.clone();
                move |_s, ctx| ctx.broadcast(p)
            });
            lin.with_protocol::<Sink, _>(id, move |_s, ctx| ctx.broadcast(payload));
            let until = grid.now() + manet_sim::SimDuration::from_millis(50);
            grid.run_until(until);
            lin.run_until(until);
        }
        prop_assert_eq!(rx_log(&grid, &ids), rx_log(&lin, &ids));
        for name in ["phy.rx_frames", "phy.rx_dropped_loss", "phy.tx_broadcasts"] {
            prop_assert_eq!(
                grid.metrics().counter(name),
                lin.metrics().counter(name)
            );
        }
    }
}

/// Deterministic regression: a ring of nodes placed *exactly* on cell
/// boundaries at *exactly* range distance — the sharpest corner of the
/// covering argument (floor on the boundary, inclusive range check).
#[test]
fn exact_boundary_ring_matches_linear() {
    let radio = RadioConfig {
        range: 250.0,
        loss: 0.0,
        ..RadioConfig::default()
    };
    // Center on the (500, 500) cell corner; eight nodes at multiples of
    // 250 m straight and diagonal, plus one at exactly range on the axis.
    let make = |channel| {
        let mut e = Engine::new(EngineConfig {
            field: Field::new(FIELD, FIELD),
            radio: radio.clone(),
            channel,
            ..EngineConfig::default()
        });
        let pts = [
            (500.0, 500.0),
            (750.0, 500.0), // exactly range to the right, on a boundary
            (250.0, 500.0),
            (500.0, 750.0),
            (500.0, 250.0),
            (750.0, 750.0), // diagonal: dist 353.6, out of range
            (250.0, 250.0),
            (500.0, 1000.0), // field edge
            (0.0, 0.0),
        ];
        let ids: Vec<NodeId> = pts
            .iter()
            .map(|&(x, y)| e.add_node(Box::new(Sink::new()), Pos::new(x, y), Mobility::Static))
            .collect();
        e.run_until(SimTime(1));
        (e, ids)
    };
    let (grid, ids) = make(ChannelMode::Grid);
    let (lin, _) = make(ChannelMode::Linear);
    for &id in &ids {
        assert_eq!(grid.neighbors(id), lin.neighbors(id), "{id:?}");
    }
    // The center hears the four at exactly `range` (inclusive check).
    assert_eq!(grid.neighbors(ids[0]), vec![ids[1], ids[2], ids[3], ids[4]]);
}
