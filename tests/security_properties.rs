//! Property-based security tests: the verification chain rejects *any*
//! tampering, not just the specific forgeries the attack tests exercise.

use manet_secure::{verify_proof, HostIdentity};
use manet_wire::{
    sigdata, IdentityProof, Ipv6Addr, Message, RouteRecord, Rreq, SecureRouteRecord, Seq, SrrEntry,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::OnceLock;

/// A small corpus of real identities (key generation is too slow to do
/// per proptest case).
fn identities() -> &'static Vec<HostIdentity> {
    static IDS: OnceLock<Vec<HostIdentity>> = OnceLock::new();
    IDS.get_or_init(|| {
        (0..4)
            .map(|i| {
                let mut rng = ChaCha12Rng::seed_from_u64(0xC0FFEE + i);
                HostIdentity::generate(512, &mut rng)
            })
            .collect()
    })
}

/// A fully valid signed RREQ with `hops` SRR entries.
fn valid_rreq(hops: usize) -> Rreq {
    let ids = identities();
    let src = &ids[0];
    let seq = Seq(77);
    let entries: Vec<SrrEntry> = (0..hops)
        .map(|i| {
            let id = &ids[1 + (i % (ids.len() - 1))];
            SrrEntry {
                ip: id.ip(),
                proof: id_proof(id, &sigdata::srr_hop(&id.ip(), seq)),
            }
        })
        .collect();
    Rreq {
        sip: src.ip(),
        dip: ids[3].ip(),
        seq,
        srr: SecureRouteRecord(entries),
        src_proof: id_proof(src, &sigdata::rreq_src(&src.ip(), seq)),
    }
}

fn id_proof(id: &HostIdentity, payload: &[u8]) -> IdentityProof {
    IdentityProof {
        pk: id.public().clone(),
        rn: id.rn(),
        sig: id.sign(payload),
    }
}

/// The destination's verification of Section 3.3, standalone.
fn destination_accepts(rreq: &Rreq) -> bool {
    if verify_proof(
        &rreq.sip,
        &sigdata::rreq_src(&rreq.sip, rreq.seq),
        &rreq.src_proof,
    )
    .is_err()
    {
        return false;
    }
    rreq.srr
        .0
        .iter()
        .all(|e| verify_proof(&e.ip, &sigdata::srr_hop(&e.ip, rreq.seq), &e.proof).is_ok())
}

#[test]
fn untampered_rreq_verifies() {
    for hops in [0, 1, 3] {
        assert!(destination_accepts(&valid_rreq(hops)), "hops={hops}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip any single bit anywhere in the encoded RREQ: the message
    /// either fails to decode, or decodes and fails verification — with
    /// one documented exception this test *pins*: the paper's source
    /// signature is `[SIP, seq]SSK`, which does not cover `DIP`. A relay
    /// can therefore divert a flood's destination. This grants no
    /// authentication power (the diverted reply matches no pending
    /// request at the source, and an on-path adversary could equally
    /// just drop the flood), but it is a real artifact of the paper's
    /// message design — see EXPERIMENTS.md "Deviations".
    #[test]
    fn any_bitflip_in_rreq_is_caught(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let rreq = valid_rreq(2);
        let original = Message::Rreq(rreq.clone());
        let mut bytes = original.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match Message::decode(&bytes) {
            Err(_) => {} // structurally rejected
            Ok(Message::Rreq(mutated)) => {
                let only_dip_changed = {
                    let mut copy = mutated.clone();
                    copy.dip = rreq.dip;
                    copy == rreq
                };
                if mutated != rreq && !only_dip_changed {
                    prop_assert!(
                        !destination_accepts(&mutated),
                        "tampered RREQ (byte {pos}, bit {bit}) still verified"
                    );
                }
            }
            Ok(_) => {} // tag flip turned it into another kind: fine, it
                        // will not match any pending state either
        }
    }

    /// Swapping one hop's address for another while keeping its proof
    /// must always fail (the address is inside the signed payload).
    #[test]
    fn srr_entry_address_substitution_rejected(victim_idx in 0usize..3) {
        let mut rreq = valid_rreq(3);
        let ids = identities();
        let other = ids[0].ip(); // not the entry's signer
        if rreq.srr.0[victim_idx].ip != other {
            rreq.srr.0[victim_idx].ip = other;
            prop_assert!(!destination_accepts(&rreq));
        }
    }

    /// Replaying an SRR entry into a different discovery (other seq)
    /// must fail: seq is inside the signed payload.
    #[test]
    fn srr_entry_cross_seq_replay_rejected(new_seq in 0u64..1000) {
        let mut rreq = valid_rreq(2);
        if new_seq != rreq.seq.0 {
            rreq.seq = Seq(new_seq);
            // Re-sign the source proof so only the hop entries are stale
            // (models a relay splicing captured entries into a new flood).
            let src = &identities()[0];
            rreq.src_proof = id_proof(src, &sigdata::rreq_src(&src.ip(), rreq.seq));
            prop_assert!(!destination_accepts(&rreq));
        }
    }

    /// A proof transplanted onto a different claimed address fails the
    /// CGA half of verification for any (identity, address) mismatch.
    #[test]
    fn proof_never_transfers_between_addresses(a in 0usize..4, b in 0usize..4) {
        prop_assume!(a != b);
        let ids = identities();
        let payload = sigdata::rerr(&ids[a].ip(), &ids[b].ip());
        let proof = id_proof(&ids[a], &payload);
        // Correct claim verifies…
        prop_assert!(verify_proof(&ids[a].ip(), &payload, &proof).is_ok());
        // …the same proof under anyone else's address does not.
        prop_assert!(verify_proof(&ids[b].ip(), &payload, &proof).is_err());
    }

    /// Random interface-ID mutations of a CGA never verify: ownership is
    /// bound to the exact 64 hash bits.
    #[test]
    fn mutated_cga_never_verifies(flip in 0u32..64) {
        let id = &identities()[0];
        let mut addr_bytes = id.ip().0;
        addr_bytes[8 + (flip / 8) as usize] ^= 1 << (flip % 8);
        let mutated = Ipv6Addr(addr_bytes);
        prop_assert!(manet_wire::cga::verify(&mutated, id.public(), id.rn()).is_err());
    }

    /// Route records inside signed payloads are order-sensitive: any
    /// permutation of a multi-hop RR changes the signed bytes.
    #[test]
    fn rrep_payload_is_order_sensitive(i in 0usize..3, j in 0usize..3) {
        prop_assume!(i != j);
        let ids = identities();
        let rr = RouteRecord(vec![ids[0].ip(), ids[1].ip(), ids[2].ip()]);
        let mut swapped = rr.clone();
        swapped.0.swap(i, j);
        prop_assert_ne!(
            sigdata::rrep(&ids[3].ip(), Seq(1), &rr),
            sigdata::rrep(&ids[3].ip(), Seq(1), &swapped)
        );
    }
}

/// Statistical sanity: distinct identities get distinct interface IDs
/// (64-bit hash, 4 samples — a collision would indicate a broken `H`).
#[test]
fn identities_have_distinct_interface_ids() {
    let ids = identities();
    let mut iids: Vec<u64> = ids.iter().map(|i| i.ip().interface_id()).collect();
    iids.sort_unstable();
    iids.dedup();
    assert_eq!(iids.len(), ids.len());
}
