//! The simulator's reproducibility contract: a scenario is a pure
//! function of its parameters and seed. Any hidden nondeterminism —
//! HashMap iteration order leaking into event order, thread interleaving
//! in a sweep, an unseeded RNG — breaks every experiment in the paper
//! reproduction, so it gets its own regression gate.

use manet_secure::scenario::{build_secure, NetworkParams};
use manet_sim::SimDuration;

/// One full run: bootstrap, two crossing flows, then the observables.
fn run(seed: u64) -> (f64, usize, u64, u64) {
    let mut net = build_secure(&NetworkParams {
        n_hosts: 5,
        seed,
        trace: true,
        ..NetworkParams::default()
    });
    assert!(net.bootstrap(), "seed {seed}: bootstrap failed");
    net.run_flows(&[(0, 4), (1, 3)], 4, SimDuration::from_millis(300));
    let m = net.engine.metrics();
    (
        net.delivery_ratio(),
        net.engine.tracer().events().len(),
        m.counter("ctl.tx_bytes"),
        m.counter("data.tx"),
    )
}

#[test]
fn same_seed_same_universe() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same NetworkParams + seed must reproduce exactly");
    // Guard against the trivial-pass failure mode (nothing simulated).
    assert!(a.0 > 0.0, "no traffic delivered: {a:?}");
    assert!(a.1 > 0, "no trace events recorded: {a:?}");
}

#[test]
fn different_seeds_diverge() {
    // Not a strict requirement of determinism, but if two seeds give a
    // byte-identical universe the seed isn't actually feeding the RNG.
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.1, a.2),
        (b.1, b.2),
        "seeds 1 and 2 produced identical trace/byte counts — seed unused?"
    );
}
