//! The simulator's reproducibility contract: a scenario is a pure
//! function of its parameters and seed. Any hidden nondeterminism —
//! HashMap iteration order leaking into event order, thread interleaving
//! in a sweep, an unseeded RNG — breaks every experiment in the paper
//! reproduction, so it gets its own regression gate.

use manet_secure::scenario::{Placement, ScenarioBuilder};
use manet_sim::{ChannelMode, Field, Mobility, SimDuration};

/// One full run: bootstrap, two crossing flows, then the observables.
fn run_with(seed: u64, channel: ChannelMode) -> (f64, usize, u64, u64) {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(seed)
        .trace(true)
        .channel(channel)
        .secure()
        .build();
    assert!(net.bootstrap(), "seed {seed}: bootstrap failed");
    let report = net.run_flows(&[(0, 4), (1, 3)], 4, SimDuration::from_millis(300));
    let m = net.engine.metrics();
    (
        report.delivery_or_nan(),
        net.engine.tracer().events().len(),
        m.counter("ctl.tx_bytes"),
        m.counter("data.tx"),
    )
}

fn run(seed: u64) -> (f64, usize, u64, u64) {
    run_with(seed, ChannelMode::Grid)
}

#[test]
fn same_seed_same_universe() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same NetworkParams + seed must reproduce exactly");
    // Guard against the trivial-pass failure mode (nothing simulated).
    assert!(a.0 > 0.0, "no traffic delivered: {a:?}");
    assert!(a.1 > 0, "no trace events recorded: {a:?}");
}

/// The spatial-index channel is an *index*, not a model change: under
/// the same seed the grid and the linear scan must produce the same
/// universe — identical metrics AND an identical trace-event stream,
/// compared line by line. This is the scenario-level differential gate
/// for the NodeId-order determinism invariant (the engine-level and
/// property-based gates live in manet-sim and tests/grid_channel.rs).
#[test]
fn grid_and_linear_channels_are_one_universe() {
    let full_run = |channel: ChannelMode| {
        let mut net = ScenarioBuilder::new()
            .hosts(6)
            .seed(21)
            .trace(true)
            // Mobile + gray zone: exercises incremental grid maintenance
            // and max_range cell sizing, not just static placement.
            .placement(Placement::Uniform)
            .field(Field::new(600.0, 600.0))
            .mobility(Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 4.0,
                pause_s: 2.0,
            })
            .radio(manet_sim::RadioConfig {
                loss: 0.05,
                gray_zone: Some(300.0),
                ..manet_sim::RadioConfig::default()
            })
            .channel(channel)
            .secure()
            .build();
        net.bootstrap();
        let report = net.run_flows(&[(0, 5), (2, 3)], 4, SimDuration::from_millis(300));
        (
            report.delivery_or_nan(),
            net.engine.metrics().counter("phy.rx_frames"),
            net.engine.metrics().counter("phy.rx_dropped_loss"),
            net.engine.metrics().counter("ctl.tx_bytes"),
            net.engine.events_processed(),
            net.engine.tracer().render(),
        )
    };
    let g = full_run(ChannelMode::Grid);
    let l = full_run(ChannelMode::Linear);
    assert_eq!(g.5, l.5, "trace streams diverged between channel modes");
    assert_eq!(
        (g.0, g.1, g.2, g.3, g.4),
        (l.0, l.1, l.2, l.3, l.4),
        "metrics diverged between channel modes"
    );
    assert!(g.1 > 0, "nothing simulated — vacuous differential");
}

#[test]
fn different_seeds_diverge() {
    // Not a strict requirement of determinism, but if two seeds give a
    // byte-identical universe the seed isn't actually feeding the RNG.
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.1, a.2),
        (b.1, b.2),
        "seeds 1 and 2 produced identical trace/byte counts — seed unused?"
    );
}
