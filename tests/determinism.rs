//! The simulator's reproducibility contract: a scenario is a pure
//! function of its parameters and seed. Any hidden nondeterminism —
//! HashMap iteration order leaking into event order, thread interleaving
//! in a sweep, an unseeded RNG — breaks every experiment in the paper
//! reproduction, so it gets its own regression gate.

use manet_secure::scenario::{Placement, ScenarioBuilder};
use manet_sim::{ChannelMode, ExecMode, Field, Mobility, QueueImpl, SimDuration};

/// One full run: bootstrap, two crossing flows, then the observables.
fn run_with(seed: u64, channel: ChannelMode) -> (f64, usize, u64, u64) {
    let mut net = ScenarioBuilder::new()
        .hosts(5)
        .seed(seed)
        .trace(true)
        .channel(channel)
        .secure()
        .build();
    assert!(net.bootstrap(), "seed {seed}: bootstrap failed");
    let report = net.run_flows(&[(0, 4), (1, 3)], 4, SimDuration::from_millis(300));
    let m = net.engine.metrics();
    (
        report.delivery_or_nan(),
        net.engine.tracer().events().len(),
        m.counter("ctl.tx_bytes"),
        m.counter("data.tx"),
    )
}

fn run(seed: u64) -> (f64, usize, u64, u64) {
    run_with(seed, ChannelMode::Grid)
}

#[test]
fn same_seed_same_universe() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same scenario spec + seed must reproduce exactly");
    // Guard against the trivial-pass failure mode (nothing simulated).
    assert!(a.0 > 0.0, "no traffic delivered: {a:?}");
    assert!(a.1 > 0, "no trace events recorded: {a:?}");
}

/// The spatial-index channel is an *index*, not a model change: under
/// the same seed the grid and the linear scan must produce the same
/// universe — identical metrics AND an identical trace-event stream,
/// compared line by line. This is the scenario-level differential gate
/// for the NodeId-order determinism invariant (the engine-level and
/// property-based gates live in manet-sim and tests/grid_channel.rs).
#[test]
fn grid_and_linear_channels_are_one_universe() {
    let full_run = |channel: ChannelMode| {
        let mut net = ScenarioBuilder::new()
            .hosts(6)
            .seed(21)
            .trace(true)
            // Mobile + gray zone: exercises incremental grid maintenance
            // and max_range cell sizing, not just static placement.
            .placement(Placement::Uniform)
            .field(Field::new(600.0, 600.0))
            .mobility(Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 4.0,
                pause_s: 2.0,
            })
            .radio(manet_sim::RadioConfig {
                loss: 0.05,
                gray_zone: Some(300.0),
                ..manet_sim::RadioConfig::default()
            })
            .channel(channel)
            .secure()
            .build();
        net.bootstrap();
        let report = net.run_flows(&[(0, 5), (2, 3)], 4, SimDuration::from_millis(300));
        (
            report.delivery_or_nan(),
            net.engine.metrics().counter("phy.rx_frames"),
            net.engine.metrics().counter("phy.rx_dropped_loss"),
            net.engine.metrics().counter("ctl.tx_bytes"),
            net.engine.events_processed(),
            net.engine.tracer().render(),
        )
    };
    let g = full_run(ChannelMode::Grid);
    let l = full_run(ChannelMode::Linear);
    assert_eq!(g.5, l.5, "trace streams diverged between channel modes");
    assert_eq!(
        (g.0, g.1, g.2, g.3, g.4),
        (l.0, l.1, l.2, l.3, l.4),
        "metrics diverged between channel modes"
    );
    assert!(g.1 > 0, "nothing simulated — vacuous differential");
}

/// Like the channel gate above, but for the event queue: the timer
/// wheel is a *scheduling structure*, not a model change, so a full
/// secure scenario — mobility, gray zone, loss, staggered joins,
/// timer-heavy DAD — must be one universe under the wheel and under the
/// binary-heap oracle, down to the trace-event stream.
#[test]
fn wheel_and_heap_queues_are_one_universe() {
    let full_run = |queue: QueueImpl| {
        let mut net = ScenarioBuilder::new()
            .hosts(6)
            .seed(21)
            .trace(true)
            .placement(Placement::Uniform)
            .field(Field::new(600.0, 600.0))
            .mobility(Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 4.0,
                pause_s: 2.0,
            })
            .radio(manet_sim::RadioConfig {
                loss: 0.05,
                gray_zone: Some(300.0),
                ..manet_sim::RadioConfig::default()
            })
            .queue(queue)
            .secure()
            .build();
        net.bootstrap();
        let report = net.run_flows(&[(0, 5), (2, 3)], 4, SimDuration::from_millis(300));
        let trace = net.engine.tracer().render();
        (report.fingerprint(), net.engine.events_processed(), trace)
    };
    let w = full_run(QueueImpl::Wheel);
    let h = full_run(QueueImpl::Heap);
    assert_eq!(w.2, h.2, "trace streams diverged between queue impls");
    assert_eq!(
        (&w.0, w.1),
        (&h.0, h.1),
        "observables diverged between queue impls"
    );
    assert!(w.1 > 0, "nothing simulated — vacuous differential");
}

/// The executor gate, one level up from the engine's unit test: a full
/// secure scenario — mobility, gray zone, loss, staggered joins,
/// timer-heavy DAD — must be byte-identical under the single-threaded
/// oracle and the sharded engine at any shard count, down to the
/// rendered trace stream. This is the tentpole's acceptance bar.
#[test]
fn sharded_and_single_executors_are_one_universe() {
    let full_run = |exec: ExecMode| {
        let mut net = ScenarioBuilder::new()
            .hosts(6)
            .seed(21)
            .trace(true)
            .placement(Placement::Uniform)
            .field(Field::new(600.0, 600.0))
            .mobility(Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 4.0,
                pause_s: 2.0,
            })
            .radio(manet_sim::RadioConfig {
                loss: 0.05,
                gray_zone: Some(300.0),
                ..manet_sim::RadioConfig::default()
            })
            .exec(exec)
            .secure()
            .build();
        net.bootstrap();
        let report = net.run_flows(&[(0, 5), (2, 3)], 4, SimDuration::from_millis(300));
        let trace = net.engine.tracer().render();
        (report.fingerprint(), net.engine.events_processed(), trace)
    };
    let single = full_run(ExecMode::Single);
    assert!(single.1 > 0, "nothing simulated — vacuous differential");
    for k in [1, 2, 8] {
        let sharded = full_run(ExecMode::Sharded(k));
        assert_eq!(
            single.2, sharded.2,
            "trace streams diverged between single and sharded({k})"
        );
        assert_eq!(
            (&single.0, single.1),
            (&sharded.0, sharded.1),
            "observables diverged between single and sharded({k})"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    // Not a strict requirement of determinism, but if two seeds give a
    // byte-identical universe the seed isn't actually feeding the RNG.
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.1, a.2),
        (b.1, b.2),
        "seeds 1 and 2 produced identical trace/byte counts — seed unused?"
    );
}

/// Randomized wheel-vs-heap differential at the raw engine level: a
/// scripted protocol schedules, cancels, and re-schedules timers (and
/// mixes in broadcasts, so `Deliver` events interleave with `Timer`
/// events) from inside its own callbacks. Whatever the interleaving —
/// including zero-delay timers and duplicate delays, i.e. same-tick
/// ties — both queue implementations must produce the identical fire
/// log, because protocols observe event *order*, not just event sets.
mod wheel_heap_script {
    use manet_sim::{
        ChannelMode, Ctx, Engine, EngineConfig, ExecMode, Mobility, NodeId, Pos, Protocol,
        QueueImpl, RadioConfig, SimDuration, SimTime, TimerHandle,
    };
    use proptest::prelude::*;
    use std::any::Any;

    /// One generated step, consumed when a timer fires: the action
    /// selector and a raw operand (delay in µs, or a cancel index).
    pub(super) type Step = (u8, u16);

    /// Fire log: (time µs, tag) per timer, (time µs, u64::MAX) per frame.
    type FireLog = Vec<(u64, u64)>;

    struct Script {
        steps: Vec<Step>,
        next: usize,
        handles: Vec<TimerHandle>,
        /// The observable (see [`FireLog`]).
        log: FireLog,
        tag_seq: u64,
    }

    impl Script {
        fn new(steps: Vec<Step>) -> Self {
            Script {
                steps,
                next: 0,
                handles: Vec::new(),
                log: Vec::new(),
                tag_seq: 0,
            }
        }

        fn consume(&mut self, ctx: &mut Ctx, count: usize) {
            for _ in 0..count {
                let Some(&(action, operand)) = self.steps.get(self.next) else {
                    return;
                };
                self.next += 1;
                match action % 4 {
                    0 => {
                        // Schedule; operand 0 is a same-tick timer, and
                        // small ranges force duplicate (tied) delays.
                        let delay = SimDuration::from_micros(u64::from(operand % 2048));
                        let tag = self.tag_seq;
                        self.tag_seq += 1;
                        self.handles.push(ctx.set_timer(delay, tag));
                    }
                    1 => {
                        // Schedule-then-cancel in the same callback.
                        let delay = SimDuration::from_micros(u64::from(operand % 512));
                        let h = ctx.set_timer(delay, 999_000 + self.tag_seq);
                        self.tag_seq += 1;
                        ctx.cancel_timer(h);
                    }
                    2 => {
                        // Cancel an arbitrary earlier handle (it may
                        // have fired already — the late-cancel path).
                        if !self.handles.is_empty() {
                            let i = usize::from(operand) % self.handles.len();
                            ctx.cancel_timer(self.handles[i]);
                        }
                    }
                    _ => {
                        // Mix a Deliver event stream into the ordering.
                        ctx.broadcast(vec![operand as u8; 1 + usize::from(operand % 7)]);
                    }
                }
            }
        }
    }

    impl Protocol for Script {
        fn on_start(&mut self, ctx: &mut Ctx) {
            // Seed the run with a burst so there is always something
            // in flight; everything else happens from on_timer.
            self.consume(ctx, 4);
        }
        fn on_frame(&mut self, ctx: &mut Ctx, _src: NodeId, _bytes: &[u8]) {
            self.log.push((ctx.now().as_micros(), u64::MAX));
            self.consume(ctx, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, tag: u64) {
            self.log.push((ctx.now().as_micros(), tag));
            self.consume(ctx, 2);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[allow(clippy::type_complexity)]
    fn run_with(
        queue: QueueImpl,
        exec: ExecMode,
        positions: [(f64, f64); 2],
        steps: &[Step],
        seed: u64,
    ) -> (FireLog, FireLog, u64) {
        let mut e = Engine::new(EngineConfig {
            seed,
            queue,
            exec,
            channel: ChannelMode::Grid,
            radio: RadioConfig {
                loss: 0.02,
                ..RadioConfig::default()
            },
            ..EngineConfig::default()
        });
        // Two nodes in range of each other: broadcasts from one arrive
        // at the other, so Deliver and Timer events interleave in the
        // queue under test.
        let a = e.add_node(
            Box::new(Script::new(steps.to_vec())),
            Pos::new(positions[0].0, positions[0].1),
            Mobility::Static,
        );
        let b = e.add_node(
            Box::new(Script::new(steps.iter().rev().cloned().collect())),
            Pos::new(positions[1].0, positions[1].1),
            Mobility::Static,
        );
        e.run_until(SimTime(30_000_000));
        (
            e.protocol_as::<Script>(a).log.clone(),
            e.protocol_as::<Script>(b).log.clone(),
            e.events_processed(),
        )
    }

    fn run(queue: QueueImpl, steps: &[Step], seed: u64) -> (FireLog, FireLog, u64) {
        run_with(
            queue,
            ExecMode::Single,
            [(0.0, 0.0), (100.0, 0.0)],
            steps,
            seed,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn wheel_and_heap_fire_in_identical_order(
            steps in proptest::collection::vec((any::<u8>(), any::<u16>()), 16..96),
            seed in 0u64..512,
        ) {
            let w = run(QueueImpl::Wheel, &steps, seed);
            let h = run(QueueImpl::Heap, &steps, seed);
            prop_assert_eq!(&w, &h);
            prop_assert!(w.2 > 0, "vacuous script — nothing dispatched");
        }

        /// Randomized sharded-vs-single differential over shard counts:
        /// the nodes sit at x=300 and x=400 in a 1000 m field, so small
        /// K puts them in one shard and larger K splits them across a
        /// band boundary — every cross-shard delivery goes through the
        /// epoch replay merge, and the fire logs must not notice.
        #[test]
        fn sharded_and_single_fire_in_identical_order(
            steps in proptest::collection::vec((any::<u8>(), any::<u16>()), 16..96),
            seed in 0u64..512,
            k in 1usize..=8,
        ) {
            let pos = [(300.0, 0.0), (400.0, 0.0)];
            let s = run_with(QueueImpl::Wheel, ExecMode::Single, pos, &steps, seed);
            let sh = run_with(QueueImpl::Wheel, ExecMode::Sharded(k), pos, &steps, seed);
            prop_assert_eq!(&s, &sh);
            prop_assert!(s.2 > 0, "vacuous script — nothing dispatched");
        }
    }

    /// Cross-shard edge case: a node teleporting (and random-waypoint
    /// walking) across shard boundaries mid-simulation. Ownership is
    /// pinned at `add_node` time, so a node physically inside another
    /// shard's band keeps dispatching on its original shard — the
    /// observables must not notice under any shard count.
    #[test]
    fn teleport_across_shard_boundary_is_one_universe() {
        let steps: Vec<Step> = (0..64).map(|i| (i as u8, (i as u16) * 37)).collect();
        let run = |exec: ExecMode| {
            let mut e = Engine::new(EngineConfig {
                seed: 9,
                exec,
                radio: RadioConfig {
                    loss: 0.02,
                    ..RadioConfig::default()
                },
                ..EngineConfig::default()
            });
            let mobile = Mobility::RandomWaypoint {
                min_speed: 20.0,
                max_speed: 60.0,
                pause_s: 0.1,
            };
            // Fast walkers straddling the K=2 boundary (x=500): mobility
            // itself carries them across bands between epochs.
            let a = e.add_node(
                Box::new(Script::new(steps.clone())),
                Pos::new(450.0, 0.0),
                mobile.clone(),
            );
            let b = e.add_node(
                Box::new(Script::new(steps.iter().rev().cloned().collect())),
                Pos::new(550.0, 0.0),
                mobile,
            );
            e.run_until(SimTime(2_000_000));
            // Teleport a into the far band (crosses every K≤8 boundary)…
            e.set_position(a, Pos::new(900.0, 0.0));
            e.run_until(SimTime(4_000_000));
            // …and back to the first band.
            e.set_position(a, Pos::new(50.0, 0.0));
            e.run_until(SimTime(8_000_000));
            (
                e.protocol_as::<Script>(a).log.clone(),
                e.protocol_as::<Script>(b).log.clone(),
                e.position(a).x.to_bits(),
                e.position(b).x.to_bits(),
                e.events_processed(),
            )
        };
        let single = run(ExecMode::Single);
        assert!(single.4 > 0, "vacuous run");
        for k in [2, 3, 8] {
            assert_eq!(
                single,
                run(ExecMode::Sharded(k)),
                "teleport universe diverged under sharded({k})"
            );
        }
    }

    /// Cross-shard edge case: a kill landing in the same epoch as
    /// in-flight cross-shard deliveries. Kills are barrier events in
    /// sharded mode, so the epoch must be clipped at the kill tick and
    /// the already-queued deliveries must observe the death in exactly
    /// the `(time, seq)` order the single-threaded oracle uses.
    #[test]
    fn kill_racing_cross_shard_delivery_is_one_universe() {
        // Broadcast-heavy scripts so deliveries are always in flight
        // across the x=500 band boundary when the kills land.
        let steps: Vec<Step> = (0..64u16).map(|i| (3, i * 13)).collect();
        let run = |exec: ExecMode| {
            let mut e = Engine::new(EngineConfig {
                seed: 4,
                exec,
                radio: RadioConfig {
                    loss: 0.0,
                    ..RadioConfig::default()
                },
                ..EngineConfig::default()
            });
            let a = e.add_node(
                Box::new(Script::new(steps.clone())),
                Pos::new(450.0, 0.0),
                Mobility::Static,
            );
            let b = e.add_node(
                Box::new(Script::new(steps.clone())),
                Pos::new(550.0, 0.0),
                Mobility::Static,
            );
            // First kill lands amid the initial broadcast exchange
            // (deliveries depart at t=0 and arrive ≥ 1 ms later); the
            // second mops up mid-conversation.
            e.kill_at(b, SimTime(1_200));
            e.kill_at(a, SimTime(5_000_000));
            e.run_until(SimTime(10_000_000));
            let m = e.metrics();
            (
                e.protocol_as::<Script>(a).log.clone(),
                e.protocol_as::<Script>(b).log.clone(),
                m.counter("phy.rx_frames"),
                m.counter("phy.rx_dropped_dead"),
                e.events_processed(),
            )
        };
        let single = run(ExecMode::Single);
        assert!(
            single.3 > 0,
            "no delivery raced the kill — vacuous edge case: {single:?}"
        );
        for k in [2, 3, 8] {
            assert_eq!(
                single,
                run(ExecMode::Sharded(k)),
                "kill-race universe diverged under sharded({k})"
            );
        }
    }
}
