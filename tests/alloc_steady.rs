//! Steady-state allocation bound for the plain forwarding hot path
//! (ROADMAP item 1, the allocator half of the memory diet).
//!
//! Installs the counting global allocator from `manet_sim::mem` and
//! meters a warmed, static chain: after the first packets have
//! discovered the route, every further round rides the cached route —
//! arena-backed send buffers, interned addresses, recycled event
//! slots — so allocator traffic per delivered payload must stay small
//! and *flat*. A regression that puts a `Vec` clone or a fresh map back
//! on the per-frame path multiplies the per-packet figure and trips the
//! bound long before it would show up in S3's peak RSS.
//!
//! Opt-in (`--features alloc-metrics`) because a counting global
//! allocator perturbs every other test in the same binary for no
//! benefit.

#![cfg(feature = "alloc-metrics")]

use manet_secure::scenario::{Placement, ScenarioBuilder, Workload};
use manet_sim::mem::{alloc_since, alloc_snapshot, CountingAlloc};
use manet_sim::SimDuration;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations allowed per delivered payload once the route is cached.
/// Measured at 58 on the 8-host chain (the steady path still decodes
/// each relayed frame into owned route/payload buffers at every hop —
/// 7 hops × ~2 Vecs each way — plus ack bookkeeping); 150 leaves real
/// headroom while still tripping on an accidental per-frame clone of a
/// neighbor table or stats map, which lands in the thousands.
const MAX_ALLOCS_PER_DELIVERY: u64 = 150;

#[test]
fn steady_state_forwarding_alloc_bound() {
    let mut net = ScenarioBuilder::new()
        .hosts(8)
        .placement(Placement::Chain { spacing: 200.0 })
        .seed(17)
        .plain()
        .build();

    // Warm-up: discover the route, populate neighbor caches, touch
    // every lazily-grown structure once.
    let w = |packets| Workload::flows(vec![(0, 7)], packets, SimDuration::from_millis(250));
    let warm = net.run(&w(8));
    assert!(
        warm.totals.data_received >= 6,
        "warm-up barely delivered ({} of 8): chain broken, bound meaningless",
        warm.totals.data_received
    );

    // Measured phase: same flow, routes cached, no discovery floods.
    let before = alloc_snapshot();
    let report = net.run(&w(64));
    let traffic = alloc_since(&before);

    let delivered = report.totals.data_received - warm.totals.data_received;
    assert!(
        delivered >= 56,
        "steady phase lost traffic ({delivered} of 64 delivered)"
    );
    let per_delivery = traffic.count / delivered;
    eprintln!(
        "steady state: {} allocs / {} bytes over {} deliveries = {} allocs each",
        traffic.count, traffic.bytes, delivered, per_delivery
    );
    assert!(
        per_delivery <= MAX_ALLOCS_PER_DELIVERY,
        "steady-state allocation regression: {} allocs / {} deliveries = {} each (bound {}); \
         something re-entered the per-frame path",
        traffic.count,
        delivered,
        per_delivery,
        MAX_ALLOCS_PER_DELIVERY
    );

    // The counting allocator must actually be live in this process —
    // otherwise the numbers above were vacuous zeros.
    assert!(traffic.count > 0, "counting allocator not installed");
    assert!(
        report.alloc_count.is_some(),
        "RunReport should surface alloc totals when the counter is live"
    );
}
