//! Parity gates for the scenario-API redesign: the fluent
//! `ScenarioBuilder` must reproduce the legacy constructors'
//! (`build_secure` / `build_plain` / `build_scale`) same-seed universes
//! **byte-identically** — same RNG draw order, same trace stream, same
//! metrics — plus a determinism property: one spec + one seed ⇒ one
//! `RunReport`, however often it is built.
//!
//! The legacy shims only survive for these tests (and the golden
//! fixtures); everything else in the repo speaks the builder.

#![allow(deprecated)]

use manet_secure::scenario::{
    build_plain, build_scale, build_secure, NetworkParams, Placement, PlainParams, RunReport,
    ScaleParams, ScenarioBuilder, Workload,
};
use manet_secure::{attacks, PlainDsrNode, SecureNode};
use manet_sim::{Mobility, SimDuration, SimTime};
use proptest::prelude::*;

/// Render a secure universe (trace + headline observables) to text for
/// byte-exact comparison.
fn render_secure(net: &mut manet_secure::Network<SecureNode>) -> String {
    net.bootstrap();
    let report = net.run(&Workload::flows(
        vec![(0, 4), (1, 3)],
        4,
        SimDuration::from_millis(300),
    ));
    format!(
        "{:?}\n{}",
        report.fingerprint(),
        net.engine.tracer().render()
    )
}

fn render_plain(net: &mut manet_secure::Network<PlainDsrNode>) -> String {
    let report = net.run(&Workload::flows(
        vec![(0, 4), (1, 3)],
        6,
        SimDuration::from_millis(300),
    ));
    format!(
        "{:?}\n{}",
        report.fingerprint(),
        net.engine.tracer().render()
    )
}

/// Secure stack: builder vs legacy `build_secure`, on the bypass
/// topology with an attacker, traced — the richest construction path
/// (DNS + staggered joins + adversary mix + custom geometry).
#[test]
fn builder_matches_build_secure_byte_for_byte() {
    let seed = 1312;
    let mut legacy = build_secure(&NetworkParams {
        n_hosts: 5,
        placement: Placement::Bypass,
        attackers: vec![(2, attacks::black_hole())],
        seed,
        trace: true,
        ..NetworkParams::default()
    });
    let mut built = ScenarioBuilder::new()
        .hosts(5)
        .placement(Placement::Bypass)
        .adversary(2, attacks::black_hole())
        .seed(seed)
        .trace(true)
        .secure()
        .build();
    let a = render_secure(&mut legacy);
    let b = render_secure(&mut built);
    assert!(a.lines().count() > 50, "vacuous comparison: {a}");
    assert_eq!(a, b, "builder and legacy secure universes diverged");
}

/// Plain stack: builder vs legacy `build_plain`, traced.
#[test]
fn builder_matches_build_plain_byte_for_byte() {
    let seed = 77;
    let mut legacy = build_plain(&PlainParams {
        n_hosts: 6,
        seed,
        trace: true,
        attackers: vec![(2, attacks::grey_hole(0.4))],
        ..PlainParams::default()
    });
    let mut built = ScenarioBuilder::new()
        .hosts(6)
        .seed(seed)
        .trace(true)
        .adversary(2, attacks::grey_hole(0.4))
        .plain()
        .build();
    let a = render_plain(&mut legacy);
    let b = render_plain(&mut built);
    assert!(a.lines().count() > 20, "vacuous comparison: {a}");
    assert_eq!(a, b, "builder and legacy plain universes diverged");
}

/// Scale family: builder (`density` + `churn`) vs legacy `build_scale`,
/// including the engine-RNG flow picker — every machine-independent
/// report field and the flow choices must agree.
#[test]
fn builder_matches_build_scale_exactly() {
    let seed = 5;
    let run = |mut net: manet_secure::Network<PlainDsrNode>| -> (Vec<(usize, usize)>, RunReport) {
        net.engine.run_until(SimTime(1_000_000));
        let flows = net.scale_flows(5);
        let mut report = net.run(&Workload::flows(
            flows.clone(),
            3,
            SimDuration::from_millis(400),
        ));
        report = report.fingerprint();
        (flows, report)
    };
    let legacy = run(build_scale(&ScaleParams {
        churn_kills: 4,
        ..ScaleParams::small(150, seed)
    }));
    // Spelled out rather than via `scale_family`: this side must stay
    // frozen against the legacy `ScaleParams` shape even if the live
    // preset evolves.
    let built = run(ScenarioBuilder::new()
        .hosts(150)
        .placement(Placement::Uniform)
        .density(15.0)
        .mobility(Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 4.0,
            pause_s: 2.0,
        })
        .churn(4, (SimTime(4_000_000), SimTime(10_000_000)))
        .seed(seed)
        .plain()
        .build());
    assert_eq!(legacy.0, built.0, "flow picks diverged");
    assert_eq!(legacy.1, built.1, "scale universes diverged");
    assert!(legacy.1.events > 1000, "vacuous comparison");
}

/// The legacy `run_flows` semantics (no warmup, 5 s drain, 64-byte 0xda
/// payload) are exactly `Workload::flows` — the two driving paths are
/// one universe.
#[test]
fn run_flows_is_sugar_for_the_workload_driver() {
    let build = || {
        ScenarioBuilder::new()
            .hosts(4)
            .seed(21)
            .trace(true)
            .plain()
            .build()
    };
    let mut a = build();
    let ra = a.run_flows(&[(0, 3)], 5, SimDuration::from_millis(250));
    let mut b = build();
    let rb = b.run(&Workload::flows(
        vec![(0, 3)],
        5,
        SimDuration::from_millis(250),
    ));
    assert_eq!(ra.fingerprint(), rb.fingerprint());
    assert_eq!(
        a.engine.tracer().render(),
        b.engine.tracer().render(),
        "driving paths diverged"
    );
}

proptest! {
    // Secure builds pay RSA keygen per node; keep the case count modest —
    // the space being probed is the builder's plumbing, not the crypto.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Builder determinism: same spec + same seed ⇒ identical RunReport
    /// fingerprint (and tracer stream), for arbitrary small plain specs.
    #[test]
    fn same_spec_same_seed_same_report(
        n in 3usize..9,
        seed in 0u64..1_000,
        packets in 1usize..4,
        spacing in 120.0f64..240.0,
    ) {
        let build = || {
            ScenarioBuilder::new()
                .hosts(n)
                .placement(Placement::Chain { spacing })
                .seed(seed)
                .trace(true)
                .plain()
                .build()
        };
        let w = Workload::flows(vec![(0, n - 1)], packets, SimDuration::from_millis(300));
        let mut a = build();
        let ra = a.run(&w);
        let mut b = build();
        let rb = b.run(&w);
        prop_assert_eq!(ra.fingerprint(), rb.fingerprint());
        prop_assert_eq!(a.engine.tracer().render(), b.engine.tracer().render());
        // And the spec actually simulated something.
        prop_assert!(ra.events > 0);
        prop_assert_eq!(ra.totals.data_sent, (packets) as u64);
    }
}

/// One secure determinism spot check through the full report (kept out
/// of the proptest loop: each secure build runs RSA keygen per node).
#[test]
fn secure_spec_is_deterministic_end_to_end() {
    let build = || ScenarioBuilder::new().hosts(4).seed(4242).secure().build();
    let w = Workload::flows(vec![(0, 3)], 3, SimDuration::from_millis(300));
    let mut a = build();
    a.bootstrap();
    let ra = a.run(&w);
    let mut b = build();
    b.bootstrap();
    let rb = b.run(&w);
    assert_eq!(ra.fingerprint(), rb.fingerprint());
    assert!(ra.crypto.demand() > 0, "secure run exercised the pipeline");
}
