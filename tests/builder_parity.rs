//! Determinism gates for the scenario API: one spec + one seed ⇒ one
//! `RunReport`, however often it is built, and the two driving paths
//! (`run_flows` sugar vs an explicit `Workload`) are one universe.
//!
//! Historically this suite also pinned the builder against the legacy
//! `build_secure` / `build_plain` / `build_scale` constructors
//! byte-for-byte; those shims are gone (the builder *is* the
//! implementation), and the determinism properties below are what
//! remains load-bearing — they are the foundation the declarative
//! campaign layer's byte-identical reports stand on.

use manet_secure::scenario::{Placement, ScenarioBuilder, Workload};
use manet_sim::{Mobility, SimDuration, SimTime};
use proptest::prelude::*;

/// The legacy `run_flows` semantics (no warmup, 5 s drain, 64-byte 0xda
/// payload) are exactly `Workload::flows` — the two driving paths are
/// one universe.
#[test]
fn run_flows_is_sugar_for_the_workload_driver() {
    let build = || {
        ScenarioBuilder::new()
            .hosts(4)
            .seed(21)
            .trace(true)
            .plain()
            .build()
    };
    let mut a = build();
    let ra = a.run_flows(&[(0, 3)], 5, SimDuration::from_millis(250));
    let mut b = build();
    let rb = b.run(&Workload::flows(
        vec![(0, 3)],
        5,
        SimDuration::from_millis(250),
    ));
    assert_eq!(ra.fingerprint(), rb.fingerprint());
    assert_eq!(
        a.engine.tracer().render(),
        b.engine.tracer().render(),
        "driving paths diverged"
    );
}

/// The scale-family preset (uniform placement, density-sized field,
/// churn, engine-RNG flow picker) is deterministic end to end — the
/// flow choices and every machine-independent report field reproduce.
#[test]
fn scale_family_reproduces_exactly() {
    let run = || {
        let mut net = manet_secure::scenario::scale_family(150, 5)
            .churn(4, (SimTime(4_000_000), SimTime(10_000_000)))
            .plain()
            .build();
        net.engine.run_until(SimTime(1_000_000));
        let flows = net.scale_flows(5);
        let report = net.run(&Workload::flows(
            flows.clone(),
            3,
            SimDuration::from_millis(400),
        ));
        (flows, report.fingerprint())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "flow picks diverged");
    assert_eq!(a.1, b.1, "scale universes diverged");
    assert!(a.1.events > 1000, "vacuous comparison");
}

proptest! {
    // Secure builds pay RSA keygen per node; keep the case count modest —
    // the space being probed is the builder's plumbing, not the crypto.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Builder determinism: same spec + same seed ⇒ identical RunReport
    /// fingerprint (and tracer stream), for arbitrary small plain specs.
    #[test]
    fn same_spec_same_seed_same_report(
        n in 3usize..9,
        seed in 0u64..1_000,
        packets in 1usize..4,
        spacing in 120.0f64..240.0,
    ) {
        let build = || {
            ScenarioBuilder::new()
                .hosts(n)
                .placement(Placement::Chain { spacing })
                .seed(seed)
                .trace(true)
                .plain()
                .build()
        };
        let w = Workload::flows(vec![(0, n - 1)], packets, SimDuration::from_millis(300));
        let mut a = build();
        let ra = a.run(&w);
        let mut b = build();
        let rb = b.run(&w);
        prop_assert_eq!(ra.fingerprint(), rb.fingerprint());
        prop_assert_eq!(a.engine.tracer().render(), b.engine.tracer().render());
        // And the spec actually simulated something.
        prop_assert!(ra.events > 0);
        prop_assert_eq!(ra.totals.data_sent, (packets) as u64);
    }

    /// The builder's churn and mobility plumbing is deterministic too —
    /// the randomized-layout path (uniform placement + waypoint motion +
    /// kills) reproduces, not just static chains.
    #[test]
    fn randomized_layout_reproduces(
        n in 10usize..30,
        seed in 0u64..1_000,
        kills in 0usize..4,
    ) {
        let run = || {
            let mut net = ScenarioBuilder::new()
                .hosts(n)
                .placement(Placement::Uniform)
                .density(12.0)
                .mobility(Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 3.0,
                    pause_s: 1.0,
                })
                .churn(kills, (SimTime(500_000), SimTime(2_000_000)))
                .seed(seed)
                .plain()
                .build();
            net.run(&Workload::flows(vec![(0, n - 1)], 2, SimDuration::from_millis(300)))
                .fingerprint()
        };
        let a = run();
        prop_assert_eq!(a.clone(), run());
        prop_assert_eq!(a.nodes_killed, kills.min(n) as u64);
    }
}

/// One secure determinism spot check through the full report (kept out
/// of the proptest loop: each secure build runs RSA keygen per node).
#[test]
fn secure_spec_is_deterministic_end_to_end() {
    let build = || ScenarioBuilder::new().hosts(4).seed(4242).secure().build();
    let w = Workload::flows(vec![(0, 3)], 3, SimDuration::from_millis(300));
    let mut a = build();
    a.bootstrap();
    let ra = a.run(&w);
    let mut b = build();
    b.bootstrap();
    let rb = b.run(&w);
    assert_eq!(ra.fingerprint(), rb.fingerprint());
    assert!(ra.crypto.demand() > 0, "secure run exercised the pipeline");
}
